"""Per-node clocks.

Every simulated machine owns a :class:`NodeClock` that maps engine time
(the "true" time) to the node's local ``CLOCK_MONOTONIC`` reading.  Nodes
boot at different moments and their oscillators drift, so two machines
reading their monotonic clocks at the same instant see different values.
This is exactly the problem §III-B of the paper solves with Cristian's
algorithm, and :mod:`repro.core.clocksync` estimates the skew the same
way the paper does: by bouncing probe packets and taking the minimum of
100 one-way samples.

``monotonic_ns`` is the analog of ``bpf_ktime_get_ns()``: reading it
costs nothing in simulated time (the paper notes the in-kernel read
involves no user/kernel crossing).
"""

from __future__ import annotations

from repro.sim.engine import Engine


class NodeClock:
    """Maps true engine time to a node-local monotonic clock.

    local(t) = BASE + (t - boot_time) * (1 + drift_ppm * 1e-6) + offset_ns

    ``offset_ns`` models the unknown boot epoch, ``drift_ppm`` the
    oscillator error (tens of ppm is realistic hardware).  ``BASE_NS``
    keeps readings positive for any reasonable negative offset --
    CLOCK_MONOTONIC never reads negative on a real machine, and the
    uniform shift cancels out of every skew/latency computation.
    """

    BASE_NS = 3_600_000_000_000  # one hour of prior uptime

    __slots__ = ("engine", "offset_ns", "drift_ppm", "boot_time_ns")

    def __init__(
        self,
        engine: Engine,
        offset_ns: int = 0,
        drift_ppm: float = 0.0,
        boot_time_ns: int = 0,
    ):
        self.engine = engine
        self.offset_ns = int(offset_ns)
        self.drift_ppm = float(drift_ppm)
        self.boot_time_ns = int(boot_time_ns)

    def monotonic_ns(self) -> int:
        """The node's CLOCK_MONOTONIC reading at the current engine time."""
        return self.at(self.engine.now)

    def at(self, true_time_ns: int) -> int:
        """The local reading corresponding to an arbitrary true time."""
        elapsed = true_time_ns - self.boot_time_ns
        scaled = elapsed * (1.0 + self.drift_ppm * 1e-6)
        return self.BASE_NS + int(round(scaled)) + self.offset_ns

    def skew_versus(self, other: "NodeClock") -> int:
        """True instantaneous offset ``self - other`` at the current time.

        Used by tests to check Cristian-estimated skew against ground
        truth; real systems obviously cannot call this.
        """
        now = self.engine.now
        return self.at(now) - other.at(now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NodeClock offset={self.offset_ns}ns drift={self.drift_ppm}ppm "
            f"boot={self.boot_time_ns}ns>"
        )
