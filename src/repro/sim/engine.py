"""The discrete-event engine.

Time is an integer number of *nanoseconds* since simulation start.  All
substrates (network stack, hypervisor scheduler, eBPF VM cost model)
schedule work on a single shared engine, which makes cross-layer latency
accounting exact: the time a packet spends queued at an OVS ingress port
and the time a vCPU waits for the Xen rate limit are measured on the same
clock the tracing scripts read.

Two programming models are supported:

* plain callbacks -- ``engine.schedule(delay_ns, fn, *args)``;
* cooperative processes -- ``engine.process(generator)`` where the
  generator yields either an integer delay in nanoseconds or a
  :class:`Signal` to wait on.  This is how workloads (Sockperf, iPerf,
  memcached clients) are written.

Determinism: events firing at the same timestamp run in scheduling order
(a monotone sequence number breaks ties), so a fixed RNG seed reproduces
every experiment exactly.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (negative delays, running twice...)."""


class Event:
    """A single scheduled callback.

    Instances are returned by :meth:`Engine.schedule` so callers can
    :meth:`cancel` them.  Cancelled events stay in the heap but are
    skipped when popped (lazy deletion); the engine's live-event counter
    is decremented eagerly so ``pending()`` and the end-of-run clock
    advance never have to rescan the heap.  ``cancelled`` is also set
    when the event fires, so a late ``cancel()`` is a no-op.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "engine")

    def __init__(
        self, time: int, seq: int, fn: Callable[..., Any], args: tuple, engine: "Engine"
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once."""
        if not self.cancelled:
            self.cancelled = True
            self.engine._live -= 1

    def __lt__(self, other: "Event") -> bool:
        # heapq calls this O(log n) times per push/pop; comparing fields
        # directly avoids allocating two tuples per comparison.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} seq={self.seq} {state} fn={self.fn!r}>"


class Signal:
    """A one-shot wakeup that processes can ``yield`` to block on.

    ``trigger(value)`` wakes every waiter with ``value``.  Triggering an
    already-triggered signal is an error; waiting on a triggered signal
    resumes immediately with the stored value.
    """

    __slots__ = ("engine", "_waiters", "triggered", "value")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._waiters: List[Callable[[Any], None]] = []
        self.triggered = False
        self.value: Any = None

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)``; fires now if already triggered."""
        if self.triggered:
            self.engine.schedule(0, callback, self.value)
        else:
            self._waiters.append(callback)

    def trigger(self, value: Any = None) -> None:
        """Wake all waiters at the current simulation time."""
        if self.triggered:
            raise SimulationError("Signal triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            self.engine.schedule(0, callback, value)


class SimProcess:
    """Drives a generator as a cooperative process.

    The generator may yield:

    * ``int``/``float`` >= 0 -- sleep that many nanoseconds;
    * :class:`Signal` -- block until triggered; the triggered value is
      sent back into the generator;
    * ``None`` -- yield to the scheduler (resume at the same timestamp).

    When the generator returns, :attr:`done` becomes ``True`` and
    :attr:`completion` (a :class:`Signal`) is triggered with the return
    value, so processes can wait on each other.
    """

    __slots__ = ("engine", "generator", "done", "result", "completion", "name")

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        self.engine = engine
        self.generator = generator
        self.done = False
        self.result: Any = None
        self.completion = Signal(engine)
        self.name = name or getattr(generator, "__name__", "process")

    def _step(self, send_value: Any = None) -> None:
        if self.done:
            return
        try:
            yielded = self.generator.send(send_value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self.completion.trigger(stop.value)
            return
        if yielded is None:
            self.engine.schedule(0, self._step, None)
        elif isinstance(yielded, Signal):
            yielded.add_waiter(self._step)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {yielded}"
                )
            self.engine.schedule(int(yielded), self._step, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return f"<SimProcess {self.name} {state}>"


class Engine:
    """Single-threaded discrete-event loop with integer-ns virtual time."""

    # Process-wide total across every engine instance.  The benchmark
    # harness (repro.bench) snapshots this around a scenario to count
    # events without reaching into the engines the scenario builds.
    _events_executed_global = 0

    @classmethod
    def global_events_executed(cls) -> int:
        """Total events executed by all engines in this process."""
        return cls._events_executed_global

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._heap: List[Event] = []
        self._live = 0  # not-yet-cancelled, not-yet-fired events in the heap
        self._running = False
        self.events_executed = 0

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    def schedule(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay_ns`` nanoseconds; returns the Event."""
        if delay_ns:
            if delay_ns < 0:
                raise SimulationError(f"negative delay {delay_ns}")
            time_ns = self._now + int(delay_ns)
        else:
            # Zero-delay wakeups (signal triggers, process steps) dominate
            # scheduling; skip the add/convert entirely.
            time_ns = self._now
        event = Event(time_ns, self._seq, fn, args, self)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute virtual time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns} before now={self._now}"
            )
        event = Event(int(time_ns), self._seq, fn, args, self)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def at_or_now(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute time ``time_ns``, clamped to now.

        Unlike :meth:`schedule_at`, a timestamp already in the past is not
        an error: the callback fires at the current time instead.  Fault
        plans use this so "crash node X at t=50ms" armed at t=60ms still
        takes effect (immediately) rather than aborting the run.
        """
        return self.schedule_at(max(int(time_ns), self._now), fn, *args)

    def process(self, generator: Generator, name: str = "") -> SimProcess:
        """Start a cooperative process; its first step runs at the current time."""
        proc = SimProcess(self, generator, name=name)
        self.schedule(0, proc._step, None)
        return proc

    def signal(self) -> Signal:
        """Convenience constructor for a :class:`Signal` bound to this engine."""
        return Signal(self)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Execute events until the heap drains, ``until`` ns is reached, or
        ``max_events`` have run.  Returns the number of events executed."""
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        try:
            if until is None and max_events is None:
                # Run-to-drain is the overwhelmingly common call; keep the
                # loop body free of bound checks.
                while heap:
                    event = pop(heap)
                    if event.cancelled:
                        continue
                    event.cancelled = True  # fired; late cancel() is a no-op
                    self._live -= 1
                    self._now = event.time
                    event.fn(*event.args)
                    executed += 1
            else:
                while heap:
                    event = heap[0]
                    if event.cancelled:
                        pop(heap)
                        continue
                    if until is not None and event.time > until:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    pop(heap)
                    event.cancelled = True
                    self._live -= 1
                    self._now = event.time
                    event.fn(*event.args)
                    executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            # Advance the clock even if nothing was left to do; callers
            # rely on `now` reflecting how far the run progressed.  Pop the
            # cancelled prefix so heap[0] (if any) is the earliest *live*
            # event -- a heap holding only cancelled events must not pin
            # the clock.
            while heap and heap[0].cancelled:
                pop(heap)
            if not heap or heap[0].time > until:
                self._now = until
        self.events_executed += executed
        Engine._events_executed_global += executed
        return executed

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self._now}ns pending={self.pending()}>"
