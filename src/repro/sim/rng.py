"""Deterministic randomness helpers.

Every experiment owns a single :class:`SeededRNG`; substrates derive
named child streams from it (``rng.fork("ovs")``) so adding a new random
consumer to one subsystem never perturbs the draws seen by another.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence


class SeededRNG:
    """A named, forkable wrapper around :class:`random.Random`."""

    def __init__(self, seed: int, name: str = "root"):
        self.seed = int(seed)
        self.name = name
        self._random = random.Random(self._derive(seed, name))

    @staticmethod
    def _derive(seed: int, name: str) -> int:
        digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, name: str) -> "SeededRNG":
        """An independent stream keyed by (seed, parent name, child name)."""
        return SeededRNG(self.seed, f"{self.name}/{name}")

    # -- primitive draws ---------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Inclusive-bounds integer draw."""
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def choice(self, seq: Sequence):
        return self._random.choice(seq)

    def shuffle(self, seq: list) -> None:
        self._random.shuffle(seq)

    def random_u32(self) -> int:
        """A 32-bit random value; used for packet trace IDs (§III-B)."""
        return self._random.getrandbits(32)

    # -- distributions used by the substrates -------------------------------

    def exponential_ns(self, mean_ns: float) -> int:
        """Exponential inter-arrival / service jitter, floored at 0."""
        return max(0, int(self._random.expovariate(1.0 / mean_ns)))

    def normal_ns(self, mean_ns: float, stddev_ns: float) -> int:
        """Gaussian service-time jitter, floored at 0."""
        return max(0, int(self._random.gauss(mean_ns, stddev_ns)))

    def lognormal_ns(self, median_ns: float, sigma: float) -> int:
        """Heavy-ish tail for per-packet kernel service times."""
        import math

        return max(0, int(self._random.lognormvariate(math.log(median_ns), sigma)))

    def pareto_ns(self, scale_ns: float, alpha: float) -> int:
        """Pareto tail; used for rare long interference events."""
        return max(0, int(scale_ns * self._random.paretovariate(alpha)))

    def bernoulli(self, probability: float) -> bool:
        return self._random.random() < probability
