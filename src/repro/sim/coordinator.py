"""Fleet-tier sharding: independent per-shard engines under a coordinator.

Where :class:`~repro.sim.shard.ShardedEngine` shards the event loop of a
*shared* world, this module shards the world itself.  Each shard is a
self-contained *shard program* (its own :class:`ShardEngine`, its own
nodes and state), and shards communicate **only** through
:class:`BoundaryMessage` values routed by the coordinator -- the
simulation analogue of packets crossing a wire/VXLAN boundary.  Because
no state is shared, shards can run on ``multiprocessing`` workers with
pickled boundary batches (``workers=True``).

Synchronization is conservative lookahead (docs/SHARDING.md):

1. the coordinator injects last round's boundary messages into each
   destination shard (one *bucket-flush* event per distinct delivery
   timestamp, messages sorted by ``(src_shard, seq)``);
2. it computes ``t_min``, the earliest pending event across all shards,
   and advances every shard to ``horizon = t_min + lookahead``;
3. it drains each shard's outbox and routes the messages for the next
   round.

Step 2 is safe because the boundary contract requires every message's
``deliver_ns - send_ns >= lookahead_ns`` (checked at send time): nothing
sent during a round can be delivered inside that round's horizon.

Per-shard engines keep the plain tuple heap ``(time, seq, fn, args)``
instead of Event objects: heap maintenance then compares tuples in C
rather than calling ``Event.__lt__`` per comparison, which is where the
``macro_fleet`` bench gets its single-core speedup over the one-Engine
baseline (see docs/SHARDING.md, "Where the speedup comes from").
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.sim.engine import Engine, SimulationError
from repro.sim.shard import DEFAULT_LOOKAHEAD_NS


class BoundaryError(SimulationError):
    """A boundary message violated the lookahead contract."""


class ShardWorkerError(RuntimeError):
    """A multiprocessing shard worker crashed, hung, or died."""


class BoundaryMessage(NamedTuple):
    """One cross-shard event, picklable by construction (ints only)."""

    deliver_ns: int  # absolute virtual delivery time at the destination
    src_shard: int
    src_node: int
    dst_shard: int
    dst_node: int
    kind: int  # scenario-defined message type
    trace_id: int  # carried in-band, like the paper's in-packet trace ID
    payload: int  # scenario-defined scalar (length, echoed clock, ...)
    send_ns: int  # absolute virtual send time at the source
    seq: int  # per-source-shard monotone send counter (tie-breaking)


class BoundaryBatch(NamedTuple):
    """One shard's outbound messages for one round (the pickled unit
    shipped between coordinator and workers)."""

    round_index: int
    src_shard: int
    messages: Tuple[BoundaryMessage, ...]


# Sorted delivery order inside a bucket: deterministic no matter which
# round or worker produced the messages.
_BUCKET_KEY = lambda m: (m.deliver_ns, m.src_shard, m.seq)  # noqa: E731

# The worker wire protocol (tuples over a Pipe); docs/SHARDING.md
# documents both tables and tests/test_docs_sharding.py diffs them.
PARENT_OPS = ("round", "finish")
WORKER_REPLIES = ("ready", "done", "result", "error")


class ShardEngine:
    """Minimal single-shard event loop with a tuple-keyed heap.

    Deliberately a subset of :class:`~repro.sim.engine.Engine`:
    ``schedule`` / ``schedule_at`` / ``now``, no cancellation, no
    processes -- shard programs are written as plain callbacks.  Events
    executed here are folded into :meth:`Engine.global_events_executed`
    so the bench harness counts sharded runs like any other.
    """

    __slots__ = ("now", "_seq", "_heap", "events_executed")

    def __init__(self) -> None:
        self.now = 0
        self._seq = 0
        self._heap: List[tuple] = []
        self.events_executed = 0

    def schedule(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        if delay_ns < 0:
            raise SimulationError(f"negative delay {delay_ns}")
        heapq.heappush(self._heap, (self.now + int(delay_ns), self._seq, fn, args))
        self._seq += 1

    def schedule_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        if time_ns < self.now:
            raise SimulationError(f"cannot schedule at {time_ns} before now={self.now}")
        heapq.heappush(self._heap, (int(time_ns), self._seq, fn, args))
        self._seq += 1

    def next_time(self) -> Optional[int]:
        return self._heap[0][0] if self._heap else None

    def pending(self) -> int:
        return len(self._heap)

    def run_until(self, horizon: int) -> int:
        """Execute every event with ``time <= horizon``; advance ``now``
        to ``horizon`` afterwards (the round barrier)."""
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        while heap and heap[0][0] <= horizon:
            time_ns, _, fn, args = pop(heap)
            self.now = time_ns
            fn(*args)
            executed += 1
        if self.now < horizon:
            self.now = horizon
        self.events_executed += executed
        Engine._events_executed_global += executed
        return executed


class BoundaryOutbox:
    """Where a shard program emits cross-shard messages.

    Enforces the lookahead contract at send time and stamps the
    per-source-shard ``seq`` used for deterministic bucket ordering.
    """

    __slots__ = ("shard", "lookahead_ns", "_seq", "_pending", "sent_total")

    def __init__(self, shard: int, lookahead_ns: int):
        self.shard = shard
        self.lookahead_ns = lookahead_ns
        self._seq = 0
        self._pending: List[BoundaryMessage] = []
        self.sent_total = 0

    def send(
        self,
        *,
        deliver_ns: int,
        dst_shard: int,
        dst_node: int,
        send_ns: int,
        src_node: int = 0,
        kind: int = 0,
        trace_id: int = 0,
        payload: int = 0,
    ) -> BoundaryMessage:
        if deliver_ns - send_ns < self.lookahead_ns:
            raise BoundaryError(
                f"boundary latency {deliver_ns - send_ns}ns below the "
                f"lookahead window {self.lookahead_ns}ns "
                f"(shard {self.shard} -> {dst_shard})"
            )
        message = BoundaryMessage(
            deliver_ns, self.shard, src_node, dst_shard, dst_node,
            kind, trace_id, payload, send_ns, self._seq,
        )
        self._seq += 1
        self.sent_total += 1
        self._pending.append(message)
        return message

    def drain(self) -> List[BoundaryMessage]:
        pending, self._pending = self._pending, []
        return pending


class InlineOutbox(BoundaryOutbox):
    """Boundary machinery for the *unsharded* leg: same contract, same
    bucket-flush delivery, but scheduled straight onto the one engine.

    Running the identical send/bucket/deliver path in every mode is what
    makes single-engine vs. sharded vs. worker runs comparable event for
    event (docs/SHARDING.md, "Boundary rules").
    """

    __slots__ = ("engine", "deliver", "_buckets")

    def __init__(self, engine, deliver: Callable[[BoundaryMessage], None],
                 lookahead_ns: int, shard: int = 0):
        super().__init__(shard, lookahead_ns)
        self.engine = engine
        self.deliver = deliver
        self._buckets: Dict[int, List[BoundaryMessage]] = {}

    def send(self, **fields: int) -> BoundaryMessage:
        message = super().send(**fields)
        self._pending.clear()  # inline mode never accumulates a round
        bucket = self._buckets.get(message.deliver_ns)
        if bucket is None:
            bucket = self._buckets[message.deliver_ns] = []
            self.engine.schedule_at(
                message.deliver_ns, self._flush, message.deliver_ns
            )
        bucket.append(message)
        return message

    def _flush(self, deliver_ns: int) -> None:
        bucket = self._buckets.pop(deliver_ns)
        bucket.sort(key=_BUCKET_KEY)
        deliver = self.deliver
        for message in bucket:
            deliver(message)


def inject_messages(program, messages: Sequence[BoundaryMessage]) -> None:
    """Schedule inbound boundary messages onto a shard program: one
    bucket-flush event per distinct delivery time, each bucket sorted by
    ``(src_shard, seq)`` so delivery order is independent of routing
    order (and therefore identical across in-process and worker runs)."""
    buckets: Dict[int, List[BoundaryMessage]] = {}
    for message in sorted(messages, key=_BUCKET_KEY):
        buckets.setdefault(message.deliver_ns, []).append(message)
    engine = program.engine
    for deliver_ns in sorted(buckets):
        engine.schedule_at(deliver_ns, _deliver_bucket, program, buckets[deliver_ns])


def _deliver_bucket(program, bucket: List[BoundaryMessage]) -> None:
    deliver = program.deliver
    for message in bucket:
        deliver(message)


class CoordinatorRun(NamedTuple):
    """Everything a fleet run produces: per-shard ``collect()`` results
    plus the coordinator's own accounting."""

    results: List[Any]
    rounds: int
    boundary_messages: int
    events_executed: int
    workers: int


class ShardCoordinator:
    """Advance ``num_shards`` shard programs in lookahead-bounded rounds.

    ``build(shard_index, num_shards, outbox)`` must return a *shard
    program*: an object with an ``engine`` (:class:`ShardEngine`), a
    ``deliver(message)`` method for inbound boundary messages, and a
    ``collect()`` method returning a picklable per-shard result.  With
    ``workers=True`` the build callable itself must be picklable (a
    module-level function or :func:`functools.partial` of one) because
    it is shipped to spawned worker processes.
    """

    def __init__(
        self,
        num_shards: int,
        build: Callable[..., Any],
        *,
        lookahead_ns: int = DEFAULT_LOOKAHEAD_NS,
        workers: bool = False,
        mp_start_method: Optional[str] = None,
        worker_timeout_s: float = 120.0,
    ) -> None:
        if num_shards < 1:
            raise SimulationError(f"need at least one shard, got {num_shards}")
        if lookahead_ns <= 0:
            raise SimulationError(f"lookahead must be positive, got {lookahead_ns}")
        self.num_shards = int(num_shards)
        self.build = build
        self.lookahead_ns = int(lookahead_ns)
        # A single shard has no boundary to parallelize across: ``--shards 1``
        # is exactly the in-process coordinator, never a worker pool.
        self.workers = bool(workers) and self.num_shards > 1
        self.mp_start_method = mp_start_method
        self.worker_timeout_s = worker_timeout_s
        # Filled by run(); read by attach_metrics callbacks.
        self.rounds = 0
        self.last_horizon_ns = 0
        self.boundary_by_shard = [0] * self.num_shards
        self.events_by_shard = [0] * self.num_shards
        self.worker_count = 0

    # -- in-process --------------------------------------------------------

    def _run_in_process(self, until: int) -> CoordinatorRun:
        outboxes = [
            BoundaryOutbox(shard, self.lookahead_ns) for shard in range(self.num_shards)
        ]
        programs = [
            self.build(shard, self.num_shards, outboxes[shard])
            for shard in range(self.num_shards)
        ]
        pending: List[List[BoundaryMessage]] = [[] for _ in range(self.num_shards)]
        executed = 0
        while True:
            for shard, inbound in enumerate(pending):
                if inbound:
                    inject_messages(programs[shard], inbound)
                    pending[shard] = []
            next_times = [p.engine.next_time() for p in programs]
            live = [t for t in next_times if t is not None]
            if not live:
                break
            t_min = min(live)
            if t_min > until:
                break
            horizon = min(t_min + self.lookahead_ns, until)
            for shard, program in enumerate(programs):
                ran = program.engine.run_until(horizon)
                executed += ran
                self.events_by_shard[shard] += ran
            self.rounds += 1
            self.last_horizon_ns = horizon
            for shard, outbox in enumerate(outboxes):
                messages = outbox.drain()
                self.boundary_by_shard[shard] += len(messages)
                for message in messages:
                    pending[message.dst_shard].append(message)
        return CoordinatorRun(
            results=[program.collect() for program in programs],
            rounds=self.rounds,
            boundary_messages=sum(self.boundary_by_shard),
            events_executed=executed,
            workers=0,
        )

    # -- multiprocessing ---------------------------------------------------

    def _expect(self, conn, shard: int):
        """Receive one worker reply or raise a clean ShardWorkerError --
        a hung or dead worker must never hang the coordinator."""
        if not conn.poll(self.worker_timeout_s):
            raise ShardWorkerError(
                f"shard {shard} worker sent nothing for "
                f"{self.worker_timeout_s:.0f}s (assuming it hung)"
            )
        try:
            reply = conn.recv()
        except EOFError:
            raise ShardWorkerError(
                f"shard {shard} worker died without a reply"
            ) from None
        if reply[0] == "error":
            raise ShardWorkerError(
                f"shard {shard} worker crashed:\n{reply[1]}"
            )
        return reply

    def _run_on_workers(self, until: int) -> CoordinatorRun:
        import multiprocessing

        context = multiprocessing.get_context(self.mp_start_method or "spawn")
        connections = []
        processes = []
        try:
            for shard in range(self.num_shards):
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=_shard_worker_main,
                    args=(child_conn, self.build, shard, self.num_shards,
                          self.lookahead_ns),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                connections.append(parent_conn)
                processes.append(process)
            self.worker_count = len(processes)

            next_times: List[Optional[int]] = []
            for shard, conn in enumerate(connections):
                tag, next_time = self._expect(conn, shard)
                assert tag == "ready"
                next_times.append(next_time)

            pending: List[List[BoundaryMessage]] = [
                [] for _ in range(self.num_shards)
            ]
            executed = 0
            round_index = 0
            while True:
                live = [t for t in next_times if t is not None]
                # Pending boundary messages are not yet in any worker's
                # heap (they ship with the next "round" op), so their
                # delivery times must bound the horizon too -- otherwise
                # a shard could advance past a delivery it has not seen.
                live.extend(
                    message.deliver_ns
                    for inbound in pending
                    for message in inbound
                )
                if not live:
                    break
                t_min = min(live)
                if t_min > until:
                    break
                horizon = min(t_min + self.lookahead_ns, until)
                for shard, conn in enumerate(connections):
                    conn.send(("round", horizon, tuple(pending[shard])))
                    pending[shard] = []
                for shard, conn in enumerate(connections):
                    tag, next_time, batch, ran = self._expect(conn, shard)
                    assert tag == "done"
                    next_times[shard] = next_time
                    executed += ran
                    self.events_by_shard[shard] += ran
                    self.boundary_by_shard[shard] += len(batch.messages)
                    for message in batch.messages:
                        pending[message.dst_shard].append(message)
                self.rounds += 1
                self.last_horizon_ns = horizon
                round_index += 1

            results = []
            for shard, conn in enumerate(connections):
                conn.send(("finish",))
            for shard, conn in enumerate(connections):
                tag, result, total = self._expect(conn, shard)
                assert tag == "result"
                results.append(result)
            # Worker-side engines bumped *their* process's global event
            # counter; fold the reported counts into this process so the
            # bench harness sees worker runs like in-process ones.
            Engine._events_executed_global += executed
            return CoordinatorRun(
                results=results,
                rounds=self.rounds,
                boundary_messages=sum(self.boundary_by_shard),
                events_executed=executed,
                workers=len(processes),
            )
        finally:
            for conn in connections:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - teardown best effort
                    pass
            for process in processes:
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()
                    process.join(timeout=5.0)

    def run(self, until: int) -> CoordinatorRun:
        """Advance every shard to ``until`` and return the merged run."""
        if self.workers:
            return self._run_on_workers(int(until))
        return self._run_in_process(int(until))

    # -- observability -----------------------------------------------------

    def attach_metrics(self, registry) -> None:
        """Register the ``shard`` stage over this coordinator's counters."""
        from repro.obs import contract as obs_contract

        registry.register_spec(obs_contract.SHARD_ROUNDS).add_callback(
            lambda: float(self.rounds)
        )
        registry.register_spec(obs_contract.SHARD_EVENTS).add_callback(
            lambda: {
                (str(shard),): float(count)
                for shard, count in enumerate(self.events_by_shard)
            }
        )
        registry.register_spec(obs_contract.SHARD_BOUNDARY).add_callback(
            lambda: {
                (str(shard),): float(count)
                for shard, count in enumerate(self.boundary_by_shard)
            }
        )
        registry.register_spec(obs_contract.SHARD_HORIZON).add_callback(
            lambda: float(self.last_horizon_ns)
        )
        registry.register_spec(obs_contract.SHARD_WORKERS).add_callback(
            lambda: float(self.worker_count)
        )


def _shard_worker_main(conn, build, shard_index: int, num_shards: int,
                       lookahead_ns: int) -> None:
    """Worker process entry point: host one shard, speak the round
    protocol over ``conn``.  Any exception -- in build, in a callback,
    in the protocol -- is reported as an ``("error", traceback)`` reply
    so the coordinator can raise instead of hanging."""
    import traceback

    try:
        outbox = BoundaryOutbox(shard_index, lookahead_ns)
        program = build(shard_index, num_shards, outbox)
        conn.send(("ready", program.engine.next_time()))
        round_index = 0
        while True:
            op = conn.recv()
            if op[0] == "round":
                _, horizon, inbound = op
                if inbound:
                    inject_messages(program, inbound)
                executed = program.engine.run_until(horizon)
                batch = BoundaryBatch(round_index, shard_index, tuple(outbox.drain()))
                conn.send(("done", program.engine.next_time(), batch, executed))
                round_index += 1
            elif op[0] == "finish":
                conn.send(("result", program.collect(),
                           program.engine.events_executed))
                return
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError(f"unknown coordinator op {op[0]!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, BrokenPipeError):  # pragma: no cover - parent gone
            pass
    finally:
        conn.close()
