"""Discrete-event simulation kernel used by every substrate in the repo.

The engine keeps integer-nanosecond virtual time and a binary heap of
events with deterministic tie-breaking, so any experiment driven from a
fixed seed regenerates bit-identically.

Public surface:

* :class:`~repro.sim.engine.Engine` -- the event loop.
* :class:`~repro.sim.engine.SimProcess` / ``Engine.process`` -- generator
  based cooperative processes (``yield <delay_ns>`` or ``yield Signal``).
* :class:`~repro.sim.engine.Signal` -- one-shot wakeup primitive.
* :class:`~repro.sim.clock.NodeClock` -- a per-node monotonic clock with
  configurable offset and drift (models CLOCK_MONOTONIC on distinct
  machines whose clocks disagree).
* :mod:`repro.sim.rng` -- deterministic random helpers.
* :class:`~repro.sim.shard.ShardedEngine` -- Engine-compatible sharded
  event loop (per-shard heaps, lookahead-bounded rounds, exact global
  order); :func:`new_engine` / :func:`engine_factory` let scenarios swap
  it in without touching topology builders (docs/SHARDING.md).
* :mod:`repro.sim.coordinator` -- the fleet tier: independent per-shard
  engines coupled only by boundary messages, optionally hosted on
  ``multiprocessing`` workers.
"""

from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.sim.clock import NodeClock
from repro.sim.coordinator import (
    BoundaryBatch,
    BoundaryError,
    BoundaryMessage,
    BoundaryOutbox,
    CoordinatorRun,
    InlineOutbox,
    ShardCoordinator,
    ShardEngine,
    ShardWorkerError,
)
from repro.sim.engine import Engine, Event, Signal, SimProcess
from repro.sim.rng import SeededRNG
from repro.sim.shard import DEFAULT_LOOKAHEAD_NS, ShardedEngine

_engine_factory: Optional[Callable[[], Engine]] = None


def new_engine() -> Engine:
    """The engine every topology builder constructs its scene on.

    Returns a plain :class:`Engine` unless an :func:`engine_factory`
    override is active -- which is how the sharding differential suite
    runs existing scenarios, unchanged, on a :class:`ShardedEngine`.
    """
    if _engine_factory is None:
        return Engine()
    return _engine_factory()


@contextmanager
def engine_factory(factory: Callable[[], Engine]) -> Iterator[None]:
    """Make :func:`new_engine` return ``factory()`` inside the block."""
    global _engine_factory
    previous, _engine_factory = _engine_factory, factory
    try:
        yield
    finally:
        _engine_factory = previous


__all__ = [
    "Engine",
    "Event",
    "Signal",
    "SimProcess",
    "NodeClock",
    "SeededRNG",
    "ShardedEngine",
    "DEFAULT_LOOKAHEAD_NS",
    "ShardEngine",
    "ShardCoordinator",
    "CoordinatorRun",
    "BoundaryMessage",
    "BoundaryBatch",
    "BoundaryOutbox",
    "InlineOutbox",
    "BoundaryError",
    "ShardWorkerError",
    "new_engine",
    "engine_factory",
]
