"""Discrete-event simulation kernel used by every substrate in the repo.

The engine keeps integer-nanosecond virtual time and a binary heap of
events with deterministic tie-breaking, so any experiment driven from a
fixed seed regenerates bit-identically.

Public surface:

* :class:`~repro.sim.engine.Engine` -- the event loop.
* :class:`~repro.sim.engine.SimProcess` / ``Engine.process`` -- generator
  based cooperative processes (``yield <delay_ns>`` or ``yield Signal``).
* :class:`~repro.sim.engine.Signal` -- one-shot wakeup primitive.
* :class:`~repro.sim.clock.NodeClock` -- a per-node monotonic clock with
  configurable offset and drift (models CLOCK_MONOTONIC on distinct
  machines whose clocks disagree).
* :mod:`repro.sim.rng` -- deterministic random helpers.
"""

from repro.sim.clock import NodeClock
from repro.sim.engine import Engine, Event, Signal, SimProcess
from repro.sim.rng import SeededRNG

__all__ = [
    "Engine",
    "Event",
    "Signal",
    "SimProcess",
    "NodeClock",
    "SeededRNG",
]
