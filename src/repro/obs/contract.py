"""The metrics contract: every metric the pipeline exports, in one place.

Instrumented components register their metrics *from these specs* (never
ad hoc), ``docs/OBSERVABILITY.md`` documents the same list, and
``tests/test_obs_pipeline.py`` diffs doc against contract so the two
cannot drift.  Add a metric here first, then instrument, then document.

Stages mirror the pipeline of DESIGN.md §3: ``ringbuffer`` (the
in-kernel record buffer), ``agent`` (the per-node daemon), ``collector``
(master-side ingest + heartbeats), ``clocksync`` (Cristian rounds),
``ebpf`` (the VM/JIT executing tracing scripts), ``sampler`` (the
observability layer itself), ``tracing`` (span-tree reconstruction,
see ``docs/TIMELINES.md``), ``faults`` (control/data-plane delivery
attempts, retries, and injected-fault accounting, see
``docs/FAULTS.md``), ``tracedb`` (the columnar trace store's column
bytes, lazy-index rebuilds, and bulk blob ingests), ``shard`` (the
sharded simulation substrate's rounds, per-shard event counts, and
boundary traffic, see ``docs/SHARDING.md``), ``streaming`` (the live
window-aggregation layer tapping packed-blob ingest downstream of the
resequencer, see ``docs/STREAMING.md``), ``rpc`` (the multi-tier
service layer exchanging traced RPCs over the simulated stack, see
``docs/SERVICES.md``).

The ``rpc`` stage only exists in runs that deploy a service graph, so
scenario-level exhaustiveness checks use :data:`CORE_METRICS` /
:data:`CORE_STAGES` (everything except ``rpc``); the RPC scenario's
own tests assert the full :data:`ALL_METRICS` / :data:`ALL_STAGES`.
"""

from __future__ import annotations

from typing import Tuple

from repro.obs.registry import MetricSpec

STAGE_RINGBUFFER = "ringbuffer"
STAGE_AGENT = "agent"
STAGE_COLLECTOR = "collector"
STAGE_CLOCKSYNC = "clocksync"
STAGE_EBPF = "ebpf"
STAGE_SAMPLER = "sampler"
STAGE_TRACING = "tracing"
STAGE_FAULTS = "faults"
STAGE_TRACEDB = "tracedb"
STAGE_SHARD = "shard"
STAGE_STREAMING = "streaming"
STAGE_RPC = "rpc"

# Fixed bucket bounds (upper edges; +Inf is implicit).  Batch sizes are
# records per flush; latencies are nanoseconds of virtual time.
FLUSH_BATCH_BUCKETS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)
FLUSH_LATENCY_BUCKETS_NS: Tuple[int, ...] = (
    100_000, 300_000, 1_000_000, 3_000_000, 10_000_000, 30_000_000, 100_000_000,
)

# -- ring buffer (core/ringbuffer.py) ----------------------------------------

RING_APPENDED = MetricSpec(
    "vnt_ring_appended_total", "counter",
    "Trace records accepted into the kernel ring buffer.",
    "records", STAGE_RINGBUFFER, ("node",))
RING_DROPPED = MetricSpec(
    "vnt_ring_dropped_total", "counter",
    "Trace records dropped because the ring buffer was full (or the "
    "record alone exceeded its capacity).",
    "records", STAGE_RINGBUFFER, ("node",))
RING_FLUSHES = MetricSpec(
    "vnt_ring_flushes_total", "counter",
    "Non-empty ring buffer drains to the agent.",
    "flushes", STAGE_RINGBUFFER, ("node",))
RING_FLUSH_BATCH = MetricSpec(
    "vnt_ring_flush_batch_records", "histogram",
    "Records moved per ring buffer flush.",
    "records", STAGE_RINGBUFFER, ("node",), FLUSH_BATCH_BUCKETS)
RING_OCCUPANCY_HWM = MetricSpec(
    "vnt_ring_occupancy_hwm_bytes", "gauge",
    "High-water mark of ring buffer occupancy since deployment.",
    "bytes", STAGE_RINGBUFFER, ("node",))

# -- agent (core/agent.py) ---------------------------------------------------

AGENT_PROBE_FIRES = MetricSpec(
    "vnt_agent_probe_fires_total", "counter",
    "Times each deployed tracing script executed at its hook "
    "(pulled from the eBPF program's run counter).",
    "fires", STAGE_AGENT, ("node", "probe"))
AGENT_FLUSH_LATENCY = MetricSpec(
    "vnt_agent_flush_latency_ns", "histogram",
    "Age of the oldest buffered record at flush time (how long records "
    "wait in the kernel before reaching the agent).",
    "ns", STAGE_AGENT, ("node",), FLUSH_LATENCY_BUCKETS_NS)
AGENT_BATCHES_SENT = MetricSpec(
    "vnt_agent_batches_sent_total", "counter",
    "Record batches shipped to the collector (online or offline).",
    "batches", STAGE_AGENT, ("node",))
AGENT_RECORDS_FORWARDED = MetricSpec(
    "vnt_agent_records_forwarded_total", "counter",
    "Trace records shipped to the collector.",
    "records", STAGE_AGENT, ("node",))
AGENT_BPF_LOAD_NS = MetricSpec(
    "vnt_agent_bpf_load_ns_total", "counter",
    "Simulated nanoseconds spent in bpf() load (verification + JIT "
    "compile) on each node's CPU 0.",
    "ns", STAGE_AGENT, ("node",))

# -- collector (core/collector.py) -------------------------------------------

COLLECTOR_BATCHES = MetricSpec(
    "vnt_collector_batches_received_total", "counter",
    "Record batches ingested by the raw data collector.",
    "batches", STAGE_COLLECTOR)
COLLECTOR_RECORDS = MetricSpec(
    "vnt_collector_records_received_total", "counter",
    "Trace records ingested into the trace database.",
    "records", STAGE_COLLECTOR)
COLLECTOR_UNKNOWN = MetricSpec(
    "vnt_collector_unknown_tracepoint_records_total", "counter",
    "Ingested records whose tracepoint ID had no registered label.",
    "records", STAGE_COLLECTOR)
COLLECTOR_HEARTBEAT_STALENESS = MetricSpec(
    "vnt_collector_heartbeat_staleness_ns", "gauge",
    "Virtual nanoseconds since each agent last reported (batch or "
    "heartbeat); evaluated at collection time.",
    "ns", STAGE_COLLECTOR, ("node",))
COLLECTOR_INGEST_RATE = MetricSpec(
    "vnt_collector_ingest_rate_per_s", "gauge",
    "Collector ingest rate over the last sampler interval "
    "(derived by the stats sampler from the records counter).",
    "records/s", STAGE_COLLECTOR)

# -- clock sync (core/clocksync.py) ------------------------------------------

CLOCKSYNC_ROUNDS = MetricSpec(
    "vnt_clocksync_rounds_total", "counter",
    "Completed Cristian synchronization rounds.",
    "rounds", STAGE_CLOCKSYNC)
CLOCKSYNC_SKEW = MetricSpec(
    "vnt_clocksync_skew_estimate_ns", "gauge",
    "Latest estimated clock skew to ADD to the node's timestamps.",
    "ns", STAGE_CLOCKSYNC, ("node",))
CLOCKSYNC_RESIDUAL = MetricSpec(
    "vnt_clocksync_residual_error_ns", "gauge",
    "Residual error bound of the latest round: Cristian's estimate is "
    "accurate to +/- the minimal one-way transmission time.",
    "ns", STAGE_CLOCKSYNC, ("node",))
CLOCKSYNC_RTT_MIN = MetricSpec(
    "vnt_clocksync_rtt_min_ns", "gauge",
    "Minimal round-trip time observed in the latest round.",
    "ns", STAGE_CLOCKSYNC, ("node",))

# -- eBPF VM / JIT (ebpf/vm.py, pulled via the tracer) ------------------------

EBPF_RUNS = MetricSpec(
    "vnt_ebpf_runs_total", "counter",
    "eBPF program executions, split by dispatch mode "
    "(pre-decoded JIT closures vs. the interpreter loop).",
    "runs", STAGE_EBPF, ("mode",))
EBPF_INSNS = MetricSpec(
    "vnt_ebpf_insns_executed_total", "counter",
    "eBPF instructions executed across all pipeline programs.",
    "instructions", STAGE_EBPF, ("mode",))
EBPF_HELPER_CALLS = MetricSpec(
    "vnt_ebpf_helper_calls_total", "counter",
    "Helper function invocations across all pipeline programs.",
    "calls", STAGE_EBPF, ("helper",))
EBPF_EXEC_NS = MetricSpec(
    "vnt_ebpf_exec_ns_total", "counter",
    "Simulated nanoseconds charged for eBPF program execution "
    "(the in-band probe overhead the paper measures).",
    "ns", STAGE_EBPF)
EBPF_PROGRAMS_LOADED = MetricSpec(
    "vnt_ebpf_programs_loaded", "gauge",
    "eBPF programs loaded by this pipeline so far (tracing scripts "
    "and clock-sync probes; survives teardown for accounting).",
    "programs", STAGE_EBPF)
EBPF_COMPILE_PROGRAMS = MetricSpec(
    "vnt_ebpf_compile_programs_total", "counter",
    "Bytecode-to-native translations performed by the compiled tier "
    "(loads that missed the verified+compiled program cache).",
    "programs", STAGE_EBPF)
EBPF_COMPILE_CACHE_HITS = MetricSpec(
    "vnt_ebpf_compile_cache_hits_total", "counter",
    "Loads served by the verified+compiled program cache without "
    "re-translating (redeploys of unchanged scripts).",
    "loads", STAGE_EBPF)

# -- the sampler itself (obs/sampler.py) -------------------------------------

SAMPLER_SAMPLES = MetricSpec(
    "vnt_stats_samples_total", "counter",
    "Registry snapshots taken by the stats sampler.",
    "samples", STAGE_SAMPLER)

# -- span reconstruction (tracing/reconstruct.py) -----------------------------

SPAN_TREES = MetricSpec(
    "vnt_span_trees_built_total", "counter",
    "Per-packet span trees reconstructed from collected trace records.",
    "trees", STAGE_TRACING)
SPAN_SPANS = MetricSpec(
    "vnt_span_spans_total", "counter",
    "Spans emitted across all reconstructed trees (packet roots, "
    "device runs, hops, wire gaps).",
    "spans", STAGE_TRACING)
SPAN_ORPHANS = MetricSpec(
    "vnt_span_orphan_records_total", "counter",
    "Trace records that could not be folded into any span tree: "
    "single-tracepoint traces, incomplete traces skipped by the "
    "completeness filter, and duplicate observations.",
    "records", STAGE_TRACING)
SPAN_ANOMALIES = MetricSpec(
    "vnt_span_anomalous_total", "counter",
    "Leaf spans flagged as anomalous (duration above N x the flow "
    "median for that hop).",
    "spans", STAGE_TRACING)
SPAN_FOREST_REBUILDS = MetricSpec(
    "vnt_tracing_forest_rebuilds_total", "counter",
    "Span-forest assemblies that ran the columnar batch pipeline "
    "(cache miss or uncacheable request).",
    "forests", STAGE_TRACING)
SPAN_FOREST_CACHE_HITS = MetricSpec(
    "vnt_tracing_forest_cache_hits_total", "counter",
    "Span-forest requests served from the generation-keyed memo cache "
    "(the TraceDB was unchanged since the matching rebuild).",
    "forests", STAGE_TRACING)
SPAN_GROUPS_ASSEMBLED = MetricSpec(
    "vnt_tracing_groups_assembled_total", "counter",
    "Per-trace row groups fed through the batch span assembler "
    "(cache hits assemble zero groups).",
    "groups", STAGE_TRACING)

# -- faults + delivery retries (core/dispatcher.py, core/agent.py,
#    core/collector.py, faults/inject.py) --------------------------------------

RETRY_DEPLOY_ATTEMPTS = MetricSpec(
    "vnt_retry_deploy_attempts_total", "counter",
    "Control-package delivery attempts by the dispatcher (first sends "
    "and retries alike; at least one per package even without faults).",
    "attempts", STAGE_FAULTS, ("node",))
RETRY_DEPLOY_RETRIES = MetricSpec(
    "vnt_retry_deploy_retries_total", "counter",
    "Control-package deliveries re-attempted after an ack timeout.",
    "retries", STAGE_FAULTS, ("node",))
RETRY_SHIP_ATTEMPTS = MetricSpec(
    "vnt_retry_ship_attempts_total", "counter",
    "Record-batch transmissions by agents (first sends and retries).",
    "attempts", STAGE_FAULTS, ("node",))
RETRY_SHIP_RETRIES = MetricSpec(
    "vnt_retry_ship_retries_total", "counter",
    "Record-batch transmissions re-attempted after an ack timeout.",
    "retries", STAGE_FAULTS, ("node",))
FAULT_CONTROL_INJECTED = MetricSpec(
    "vnt_fault_control_injected_total", "counter",
    "Faults injected on the dispatcher<->agent control channel, "
    "by kind (loss, duplicate, delay).",
    "faults", STAGE_FAULTS, ("kind",))
FAULT_SHIPMENT_INJECTED = MetricSpec(
    "vnt_fault_shipment_injected_total", "counter",
    "Faults injected on the agent->collector shipment channel, "
    "by kind (loss, duplicate, delay).",
    "faults", STAGE_FAULTS, ("kind",))
FAULT_AGENT_CRASHES = MetricSpec(
    "vnt_fault_agent_crashes_total", "counter",
    "Scheduled agent crashes executed by the fault injector.",
    "crashes", STAGE_FAULTS, ("node",))
FAULT_AGENT_RESTARTS = MetricSpec(
    "vnt_fault_agent_restarts_total", "counter",
    "Agent restarts after a scheduled crash.",
    "restarts", STAGE_FAULTS, ("node",))
FAULT_RECORDS_LOST = MetricSpec(
    "vnt_fault_records_lost_total", "counter",
    "Trace records lost to faults, by reason: shipment (batch "
    "abandoned after retry-budget exhaustion), crash_ring / crash_store "
    "(buffered records discarded by an agent crash), ring_policy "
    "(records evicted or sampled out under a degradation policy).",
    "records", STAGE_FAULTS, ("node", "reason"))
FAULT_RING_PRESSURE = MetricSpec(
    "vnt_fault_ring_pressure_total", "counter",
    "Forced ring-buffer pressure windows applied by the fault injector.",
    "windows", STAGE_FAULTS, ("node",))
FAULT_SHIPMENT_DEDUPED = MetricSpec(
    "vnt_fault_shipment_deduped_total", "counter",
    "Duplicate record batches discarded by TraceDB-side dedup "
    "(same node + sequence number seen before).",
    "batches", STAGE_FAULTS, ("node",))

# -- trace database (core/tracedb.py) -----------------------------------------

TRACEDB_BYTES = MetricSpec(
    "vnt_tracedb_bytes_stored", "gauge",
    "Bytes held in the trace database's column storage across every "
    "tracepoint table.",
    "bytes", STAGE_TRACEDB)
TRACEDB_INDEX_REBUILDS = MetricSpec(
    "vnt_tracedb_index_rebuilds", "gauge",
    "Lazy sorted-index (re)builds performed by the trace database: an "
    "insert into a table invalidates its timestamp index, the next "
    "query that needs it pays one rebuild.",
    "rebuilds", STAGE_TRACEDB)
TRACEDB_BULK_BATCHES = MetricSpec(
    "vnt_tracedb_bulk_batches", "gauge",
    "Packed shipment blobs bulk-ingested straight into the columns "
    "(insert_packed calls; the batch-first hot path).",
    "batches", STAGE_TRACEDB)

# -- sharded simulation substrate (sim/shard.py, sim/coordinator.py) ----------

SHARD_ROUNDS = MetricSpec(
    "vnt_shard_rounds_total", "counter",
    "Lookahead-bounded synchronization rounds advanced by a sharded "
    "engine or shard coordinator.",
    "rounds", STAGE_SHARD)
SHARD_EVENTS = MetricSpec(
    "vnt_shard_events_total", "counter",
    "Events executed on each shard's event loop.",
    "events", STAGE_SHARD, ("shard",))
SHARD_BOUNDARY = MetricSpec(
    "vnt_shard_boundary_events_total", "counter",
    "Cross-shard traffic routed through boundary queues: boundary "
    "messages per source shard (fleet tier), or events scheduled onto "
    "a shard other than their scheduler's (compat tier).",
    "events", STAGE_SHARD, ("shard",))
SHARD_HORIZON = MetricSpec(
    "vnt_shard_horizon_ns", "gauge",
    "Virtual-time horizon of the most recent synchronization round.",
    "ns", STAGE_SHARD)
SHARD_WORKERS = MetricSpec(
    "vnt_shard_workers", "gauge",
    "Worker processes hosting shards (0 when shards run in-process).",
    "workers", STAGE_SHARD)

# -- streaming window aggregation (streaming/aggregate.py) --------------------

STREAM_RECORDS = MetricSpec(
    "vnt_stream_records_total", "counter",
    "Records observed by the streaming aggregator's collector tap "
    "(downstream of the resequencer: deduplicated, in per-node order).",
    "records", STAGE_STREAMING, ("node",))
STREAM_WINDOWS_CLOSED = MetricSpec(
    "vnt_stream_windows_closed_total", "counter",
    "Windows closed by a watermark advance or by end-of-run close_all.",
    "windows", STAGE_STREAMING)
STREAM_LATE_OR_GAP = MetricSpec(
    "vnt_stream_late_or_gap_total", "counter",
    "Late data dropped because its window already closed (kind=late) "
    "and skip_shipment gap notices from the resequencer (kind=gap).",
    "events", STAGE_STREAMING, ("kind",))
STREAM_SKETCH_MERGES = MetricSpec(
    "vnt_stream_sketch_merges_total", "counter",
    "Per-window percentile sketches merged into the run-level per-hop "
    "sketches at window close.",
    "merges", STAGE_STREAMING)
STREAM_TOPK_EVICTIONS = MetricSpec(
    "vnt_stream_topk_evictions_total", "counter",
    "Flows evicted from the bounded top-K-slowest heap by a slower one.",
    "evictions", STAGE_STREAMING)
STREAM_OPEN_WINDOWS = MetricSpec(
    "vnt_stream_open_windows", "gauge",
    "Windows currently open (seen at least one record, not yet closed).",
    "windows", STAGE_STREAMING)
STREAM_WATERMARK = MetricSpec(
    "vnt_stream_watermark_ns", "gauge",
    "The event-time watermark: min over expected nodes of the newest "
    "aligned timestamp, minus the allowed lateness.",
    "ns", STAGE_STREAMING)

# -- rpc: the multi-tier service layer (docs/SERVICES.md) ---------------------

RPC_LATENCY_BUCKETS_NS: Tuple[int, ...] = (
    100_000, 300_000, 1_000_000, 3_000_000, 10_000_000, 30_000_000, 100_000_000,
)

RPC_REQUESTS = MetricSpec(
    "vnt_rpc_requests_total", "counter",
    "RPC requests handled per service tier (root tiers count the "
    "requests they originate).",
    "requests", STAGE_RPC, ("service",))
RPC_RESPONSES = MetricSpec(
    "vnt_rpc_responses_total", "counter",
    "RPC responses sent upstream per service tier after fan-in "
    "completes.",
    "responses", STAGE_RPC, ("service",))
RPC_CALLS = MetricSpec(
    "vnt_rpc_calls_total", "counter",
    "Child RPCs issued along each (caller tier, callee tier) edge of "
    "the service graph.",
    "calls", STAGE_RPC, ("caller", "callee"))
RPC_LINKS_RECORDED = MetricSpec(
    "vnt_rpc_links_recorded_total", "counter",
    "Distinct parent/child trace-ID links read back from the wire "
    "embed at RPC receivers.",
    "links", STAGE_RPC)
RPC_INFLIGHT = MetricSpec(
    "vnt_rpc_inflight_requests", "gauge",
    "Requests currently awaiting fan-in completion on each node.",
    "requests", STAGE_RPC, ("node",))
RPC_REQUEST_LATENCY = MetricSpec(
    "vnt_rpc_request_latency_ns", "histogram",
    "End-to-end latency of root requests, issue to final fan-in, as "
    "observed by the originating tier.",
    "ns", STAGE_RPC, ("service",), RPC_LATENCY_BUCKETS_NS)

ALL_METRICS: Tuple[MetricSpec, ...] = (
    RING_APPENDED, RING_DROPPED, RING_FLUSHES, RING_FLUSH_BATCH, RING_OCCUPANCY_HWM,
    AGENT_PROBE_FIRES, AGENT_FLUSH_LATENCY, AGENT_BATCHES_SENT,
    AGENT_RECORDS_FORWARDED, AGENT_BPF_LOAD_NS,
    COLLECTOR_BATCHES, COLLECTOR_RECORDS, COLLECTOR_UNKNOWN,
    COLLECTOR_HEARTBEAT_STALENESS, COLLECTOR_INGEST_RATE,
    CLOCKSYNC_ROUNDS, CLOCKSYNC_SKEW, CLOCKSYNC_RESIDUAL, CLOCKSYNC_RTT_MIN,
    EBPF_RUNS, EBPF_INSNS, EBPF_HELPER_CALLS, EBPF_EXEC_NS, EBPF_PROGRAMS_LOADED,
    EBPF_COMPILE_PROGRAMS, EBPF_COMPILE_CACHE_HITS,
    SAMPLER_SAMPLES,
    SPAN_TREES, SPAN_SPANS, SPAN_ORPHANS, SPAN_ANOMALIES,
    SPAN_FOREST_REBUILDS, SPAN_FOREST_CACHE_HITS, SPAN_GROUPS_ASSEMBLED,
    RETRY_DEPLOY_ATTEMPTS, RETRY_DEPLOY_RETRIES,
    RETRY_SHIP_ATTEMPTS, RETRY_SHIP_RETRIES,
    FAULT_CONTROL_INJECTED, FAULT_SHIPMENT_INJECTED,
    FAULT_AGENT_CRASHES, FAULT_AGENT_RESTARTS,
    FAULT_RECORDS_LOST, FAULT_RING_PRESSURE, FAULT_SHIPMENT_DEDUPED,
    TRACEDB_BYTES, TRACEDB_INDEX_REBUILDS, TRACEDB_BULK_BATCHES,
    SHARD_ROUNDS, SHARD_EVENTS, SHARD_BOUNDARY, SHARD_HORIZON, SHARD_WORKERS,
    STREAM_RECORDS, STREAM_WINDOWS_CLOSED, STREAM_LATE_OR_GAP,
    STREAM_SKETCH_MERGES, STREAM_TOPK_EVICTIONS, STREAM_OPEN_WINDOWS,
    STREAM_WATERMARK,
    RPC_REQUESTS, RPC_RESPONSES, RPC_CALLS, RPC_LINKS_RECORDED,
    RPC_INFLIGHT, RPC_REQUEST_LATENCY,
)

ALL_STAGES: Tuple[str, ...] = (
    STAGE_RINGBUFFER, STAGE_AGENT, STAGE_COLLECTOR, STAGE_CLOCKSYNC,
    STAGE_EBPF, STAGE_SAMPLER, STAGE_TRACING, STAGE_FAULTS, STAGE_TRACEDB,
    STAGE_SHARD, STAGE_STREAMING, STAGE_RPC,
)

# The contract minus the service layer: what every tracing scenario
# exports even without a deployed ServiceGraph.
CORE_METRICS: Tuple[MetricSpec, ...] = tuple(
    spec for spec in ALL_METRICS if spec.stage != STAGE_RPC
)
CORE_STAGES: Tuple[str, ...] = tuple(
    stage for stage in ALL_STAGES if stage != STAGE_RPC
)
