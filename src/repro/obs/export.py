"""Registry exporters: JSON snapshots and Prometheus text format.

Both render the *entire* registry (every metric in
:mod:`repro.obs.contract` that has been registered), so an operator --
or a test -- can diff what the pipeline actually exported against the
documented contract.  Timestamps are virtual nanoseconds supplied by
the caller; nothing here reads a wall clock.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.obs.registry import Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.obs.sampler import StatsSampler


# -- JSON --------------------------------------------------------------------

def snapshot_dict(registry: MetricsRegistry, t_ns: Optional[int] = None) -> Dict:
    """The registry as one JSON-able dict, keyed by metric name."""
    metrics: Dict[str, Dict] = {}
    for metric in registry.metrics():
        spec = metric.spec
        entry: Dict = {
            "type": spec.kind,
            "help": spec.help,
            "unit": spec.unit,
            "stage": spec.stage,
            "label_names": list(spec.label_names),
        }
        if isinstance(metric, Histogram):
            entry["buckets"] = list(spec.buckets)
            entry["values"] = [
                {
                    "labels": dict(zip(spec.label_names, key)),
                    "bucket_counts": list(data.bucket_counts),
                    "sum": data.sum,
                    "count": data.count,
                }
                for key, data in metric.samples()
            ]
        else:
            entry["values"] = [
                {"labels": dict(zip(spec.label_names, key)), "value": value}
                for key, value in metric.samples()
            ]
        metrics[spec.name] = entry
    out: Dict = {"metrics": metrics}
    if t_ns is not None:
        out["t_ns"] = int(t_ns)
    return out


def snapshot_json(registry: MetricsRegistry, t_ns: Optional[int] = None,
                  indent: Optional[int] = 2) -> str:
    return json.dumps(snapshot_dict(registry, t_ns), indent=indent, sort_keys=True)


def series_json(sampler: "StatsSampler", indent: Optional[int] = 2) -> str:
    """The sampler's accumulated time-series rows as JSON."""
    return json.dumps(
        {"interval_ns": sampler.interval_ns, "rows": sampler.rows},
        indent=indent, sort_keys=True,
    )


# -- Prometheus text format --------------------------------------------------

def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(names, values, extra: Optional[List[str]] = None) -> str:
    pairs = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    pairs += extra or []
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus exposition (text) format."""
    lines: List[str] = []
    for metric in registry.metrics():
        spec = metric.spec
        lines.append(f"# HELP {spec.name} {spec.help}")
        lines.append(f"# TYPE {spec.name} {spec.kind}")
        if isinstance(metric, Histogram):
            for key, data in metric.samples():
                cumulative = 0
                for bound, count in zip(spec.buckets, data.bucket_counts):
                    cumulative += count
                    labels = _format_labels(spec.label_names, key, [f'le="{bound}"'])
                    lines.append(f"{spec.name}_bucket{labels} {cumulative}")
                labels = _format_labels(spec.label_names, key, ['le="+Inf"'])
                lines.append(f"{spec.name}_bucket{labels} {data.count}")
                suffix = _format_labels(spec.label_names, key)
                lines.append(f"{spec.name}_sum{suffix} {_format_value(data.sum)}")
                lines.append(f"{spec.name}_count{suffix} {data.count}")
        else:
            for key, value in metric.samples():
                suffix = _format_labels(spec.label_names, key)
                lines.append(f"{spec.name}{suffix} {_format_value(value)}")
    return "\n".join(lines) + "\n"
