"""Self-observability for the tracing pipeline.

An in-band tracer is only trustworthy if it accounts for its *own*
cost (see Nahida, arXiv:2311.09032, and Minions, arXiv:1405.7143).
This package makes every pipeline stage measurable:

* :mod:`repro.obs.registry` -- counters / gauges / fixed-bucket
  histograms, one :class:`MetricsRegistry` per pipeline;
* :mod:`repro.obs.contract` -- the declared set of exported metrics
  (mirrored by ``docs/OBSERVABILITY.md``; a test diffs the two);
* :mod:`repro.obs.sampler` -- :class:`StatsSampler`, periodic registry
  snapshots on the simulation engine (virtual time only);
* :mod:`repro.obs.export` -- JSON and Prometheus-text exporters;
* :mod:`repro.obs.instrument` -- pull-based eBPF VM/JIT metrics;
* :mod:`repro.obs.scenario` -- the quickstart scenario behind the
  ``repro stats`` CLI subcommand (imported lazily; it pulls in the
  full stack).

Every :class:`~repro.core.vnettracer.VNetTracer` owns a registry
(``tracer.obs``); ``tracer.attach_stats_sampler()`` starts periodic
sampling and ``tracer.pipeline_health()`` renders the report.
"""

from repro.obs.contract import ALL_METRICS, ALL_STAGES
from repro.obs.export import (
    prometheus_text,
    series_json,
    snapshot_dict,
    snapshot_json,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    MetricError,
    MetricSpec,
    MetricsRegistry,
    estimate_quantile,
)
from repro.obs.sampler import StatsSampler

__all__ = [
    "ALL_METRICS",
    "ALL_STAGES",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramData",
    "MetricError",
    "MetricSpec",
    "MetricsRegistry",
    "StatsSampler",
    "estimate_quantile",
    "prometheus_text",
    "series_json",
    "snapshot_dict",
    "snapshot_json",
]
