"""The self-observability metrics registry.

The paper sells vNetTracer on *low, measurable* overhead; this module
is how the reproduction measures its own pipeline.  It is a miniature
Prometheus-style client library with three metric kinds:

* :class:`Counter` -- monotone totals (records appended, drops, ...);
* :class:`Gauge` -- point-in-time values (ring occupancy high-water
  mark, heartbeat staleness, ...);
* :class:`Histogram` -- fixed-bound bucketed distributions (flush batch
  sizes, flush latency, ...).

Design constraints (deliberate, and load-bearing for determinism):

* **No wall-clock calls.**  Nothing here reads host time; every
  timestamp attached to a sample comes from the simulation
  :class:`~repro.sim.engine.Engine` via the caller
  (:class:`~repro.obs.sampler.StatsSampler`).
* **Fixed histogram bounds.**  Buckets are declared up front in the
  metric's :class:`MetricSpec`, so two runs of the same experiment
  export bit-identical shapes.
* **Pull-friendly.**  Counters and gauges accept *callbacks* that are
  evaluated at collection time, so hot paths that already maintain a
  counter (e.g. :attr:`BPFProgram.run_count`) need no per-event work.

Every exported metric is declared in :mod:`repro.obs.contract`, and
``docs/OBSERVABILITY.md`` documents the contract; a test diffs the two.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple, Union

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_KINDS = ("counter", "gauge", "histogram")

# A callback may return one number (an unlabeled sample) or a mapping
# from label-value tuples to numbers (one sample per labeled child).
SampleCallback = Callable[[], Union[float, Dict[Tuple[str, ...], float]]]


class MetricError(ValueError):
    """Invalid metric declaration or usage (bad name, label mismatch...)."""


class MetricSpec(NamedTuple):
    """The exported contract of one metric: everything a consumer needs."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    unit: str = ""
    stage: str = ""  # which pipeline stage emits it
    label_names: Tuple[str, ...] = ()
    buckets: Optional[Tuple[int, ...]] = None  # histogram upper bounds

    def validate(self) -> None:
        if not _NAME_RE.match(self.name):
            raise MetricError(f"bad metric name {self.name!r}")
        if self.kind not in _KINDS:
            raise MetricError(f"bad metric kind {self.kind!r} for {self.name}")
        for label in self.label_names:
            if not _NAME_RE.match(label):
                raise MetricError(f"bad label name {label!r} for {self.name}")
        if self.kind == "histogram":
            if not self.buckets:
                raise MetricError(f"histogram {self.name} needs bucket bounds")
            if list(self.buckets) != sorted(self.buckets) or len(set(self.buckets)) != len(
                self.buckets
            ):
                raise MetricError(f"histogram {self.name} buckets must strictly increase")
        elif self.buckets is not None:
            raise MetricError(f"{self.kind} {self.name} cannot have buckets")


def _labels_key(labels: Iterable[object]) -> Tuple[str, ...]:
    return tuple(str(value) for value in labels)


class _ScalarMetric:
    """Shared machinery for counters and gauges: stored values + callbacks."""

    __slots__ = ("spec", "_values", "_callbacks")

    def __init__(self, spec: MetricSpec):
        self.spec = spec
        self._values: Dict[Tuple[str, ...], float] = {}
        self._callbacks: List[SampleCallback] = []

    def _key(self, labels: Iterable[object]) -> Tuple[str, ...]:
        key = _labels_key(labels)
        if len(key) != len(self.spec.label_names):
            raise MetricError(
                f"{self.spec.name} expects labels {self.spec.label_names}, got {key!r}"
            )
        return key

    def add_callback(self, fn: SampleCallback) -> None:
        """Register a pull source evaluated at every collection."""
        self._callbacks.append(fn)

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        """(label values, value) pairs, stored + callback-merged, sorted."""
        merged = dict(self._values)
        for fn in self._callbacks:
            out = fn()
            if not isinstance(out, dict):
                out = {(): float(out)}
            for raw_key, value in out.items():
                key = self._key(raw_key)
                merged[key] = merged.get(key, 0.0) + float(value)
        return sorted(merged.items())

    def value(self, labels: Iterable[object] = ()) -> float:
        """One labeled child's current value (0.0 if never touched)."""
        wanted = self._key(labels)
        for key, value in self.samples():
            if key == wanted:
                return value
        return 0.0

    def total(self) -> float:
        """Sum over every labeled child (and callback output)."""
        return sum(value for _, value in self.samples())


class Counter(_ScalarMetric):
    """Monotone total; ``inc`` only accepts non-negative amounts."""

    def inc(self, amount: float = 1, labels: Iterable[object] = ()) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.spec.name} cannot decrease ({amount})")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(_ScalarMetric):
    """Point-in-time value, set to whatever the instrument observes."""

    def set(self, value: float, labels: Iterable[object] = ()) -> None:
        self._values[self._key(labels)] = float(value)

    def set_max(self, value: float, labels: Iterable[object] = ()) -> None:
        """High-water-mark update: keep the larger of old and new."""
        key = self._key(labels)
        if value > self._values.get(key, float("-inf")):
            self._values[key] = float(value)


class HistogramData(NamedTuple):
    """One labeled child's state: per-bucket counts (+Inf last), sum, count."""

    bucket_counts: Tuple[int, ...]
    sum: float
    count: int


class Histogram:
    """Fixed-bound histogram; ``observe`` files a value into its bucket."""

    __slots__ = ("spec", "_data")

    def __init__(self, spec: MetricSpec):
        self.spec = spec
        self._data: Dict[Tuple[str, ...], List] = {}  # [counts list, sum, count]

    def _key(self, labels: Iterable[object]) -> Tuple[str, ...]:
        key = _labels_key(labels)
        if len(key) != len(self.spec.label_names):
            raise MetricError(
                f"{self.spec.name} expects labels {self.spec.label_names}, got {key!r}"
            )
        return key

    def observe(self, value: float, labels: Iterable[object] = ()) -> None:
        key = self._key(labels)
        state = self._data.get(key)
        if state is None:
            state = self._data[key] = [[0] * (len(self.spec.buckets) + 1), 0.0, 0]
        counts, _, _ = state
        for i, bound in enumerate(self.spec.buckets):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1  # +Inf bucket
        state[1] += value
        state[2] += 1

    def data(self, labels: Iterable[object] = ()) -> HistogramData:
        state = self._data.get(self._key(labels))
        if state is None:
            return HistogramData(tuple([0] * (len(self.spec.buckets) + 1)), 0.0, 0)
        return HistogramData(tuple(state[0]), state[1], state[2])

    def samples(self) -> List[Tuple[Tuple[str, ...], HistogramData]]:
        return sorted(
            (key, HistogramData(tuple(state[0]), state[1], state[2]))
            for key, state in self._data.items()
        )

    def total(self) -> float:
        """Total observation count across labeled children."""
        return float(sum(state[2] for state in self._data.values()))

    def quantile(self, q: float, labels: Iterable[object] = ()) -> Optional[float]:
        """Implied quantile of one labeled child via the shared
        bucket->quantile estimator (``None`` if never observed)."""
        data = self.data(labels)
        return estimate_quantile(self.spec.buckets, data.bucket_counts, q)


def estimate_quantile(
    bounds: Tuple[int, ...], bucket_counts: Iterable[int], q: float
) -> Optional[float]:
    """Prometheus-style ``histogram_quantile`` over fixed buckets.

    ``bounds`` are the finite upper edges (ascending); ``bucket_counts``
    has one count per bound plus the trailing +Inf bucket.  The estimate
    interpolates linearly inside the bucket holding the ``q``-th rank
    (lower edge 0 for the first bucket); ranks landing in the +Inf
    bucket clamp to the highest finite bound.  Returns ``None`` for an
    empty histogram.  The error is bounded by the width of the bucket
    the true quantile falls in (see docs/STREAMING.md).
    """
    if not 0.0 <= q <= 1.0:
        raise MetricError(f"quantile must be in [0, 1], got {q}")
    counts = list(bucket_counts)
    if len(counts) != len(bounds) + 1:
        raise MetricError(
            f"expected {len(bounds) + 1} bucket counts (+Inf last), got {len(counts)}"
        )
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    for i, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank and cumulative > 0:
            if i == len(bounds):
                return float(bounds[-1])
            upper = float(bounds[i])
            lower = float(bounds[i - 1]) if i else 0.0
            within = rank - (cumulative - count)
            if within < 0:
                within = 0.0
            return lower + (upper - lower) * (within / count)
    return float(bounds[-1])  # pragma: no cover - unreachable (total > 0)


Metric = Union[Counter, Gauge, Histogram]

_METRIC_CLASSES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """All metrics of one pipeline instance (one registry per tracer).

    ``register_spec`` is get-or-create: registering the same spec twice
    returns the existing metric (agents on different nodes share one
    metric via labels), while re-registering a *different* spec under
    the same name is an error.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # -- registration ------------------------------------------------------

    def register_spec(self, spec: MetricSpec) -> Metric:
        existing = self._metrics.get(spec.name)
        if existing is not None:
            if existing.spec != spec:
                raise MetricError(
                    f"metric {spec.name!r} re-registered with a different spec"
                )
            return existing
        spec.validate()
        metric = _METRIC_CLASSES[spec.kind](spec)
        self._metrics[spec.name] = metric
        return metric

    def counter(self, name: str, help: str = "", unit: str = "", stage: str = "",
                label_names: Tuple[str, ...] = ()) -> Counter:
        return self.register_spec(
            MetricSpec(name, "counter", help, unit, stage, tuple(label_names))
        )

    def gauge(self, name: str, help: str = "", unit: str = "", stage: str = "",
              label_names: Tuple[str, ...] = ()) -> Gauge:
        return self.register_spec(
            MetricSpec(name, "gauge", help, unit, stage, tuple(label_names))
        )

    def histogram(self, name: str, buckets: Tuple[int, ...], help: str = "",
                  unit: str = "", stage: str = "",
                  label_names: Tuple[str, ...] = ()) -> Histogram:
        return self.register_spec(
            MetricSpec(name, "histogram", help, unit, stage, tuple(label_names),
                       tuple(buckets))
        )

    # -- lookup ------------------------------------------------------------

    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise MetricError(f"unknown metric {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def metrics(self) -> List[Metric]:
        """All metrics ordered by (stage, name) -- the export order."""
        return sorted(self._metrics.values(), key=lambda m: (m.spec.stage, m.spec.name))

    def stages(self) -> List[str]:
        return sorted({m.spec.stage for m in self._metrics.values() if m.spec.stage})

    def total(self, name: str) -> float:
        """Counter/gauge: sum over labels.  Histogram: observation count."""
        return self.get(name).total()

    # -- flattening (sampler rows, reports) --------------------------------

    def flatten(self) -> Dict[str, float]:
        """One scalar per (metric, label set), Prometheus-style keys.

        Histograms flatten to ``<name>_count{...}`` and ``<name>_sum{...}``
        (per-bucket counts stay in the full exporters only).
        """
        flat: Dict[str, float] = {}
        for metric in self.metrics():
            spec = metric.spec
            if isinstance(metric, Histogram):
                for key, data in metric.samples():
                    suffix = _label_suffix(spec.label_names, key)
                    flat[f"{spec.name}_count{suffix}"] = float(data.count)
                    flat[f"{spec.name}_sum{suffix}"] = float(data.sum)
            else:
                for key, value in metric.samples():
                    flat[f"{spec.name}{_label_suffix(spec.label_names, key)}"] = float(value)
        return flat


def _label_suffix(label_names: Tuple[str, ...], label_values: Tuple[str, ...]) -> str:
    if not label_names:
        return ""
    pairs = ",".join(
        f'{name}="{value}"' for name, value in zip(label_names, label_values)
    )
    return "{" + pairs + "}"
