"""The quickstart scenario with the observability layer attached.

This is ``examples/quickstart.py`` as a reusable function: the paper's
Fig. 7(a)-style topology (two hosts, a KVM VM each, OVS bridging), a
Sockperf flow, clock sync, and four tracing scripts along the path --
plus a :class:`~repro.obs.sampler.StatsSampler` snapshotting the
pipeline's own health.  The ``repro stats`` CLI subcommand and the
observability acceptance tests both drive this function, so "the
exporters emit nonzero metrics for every instrumented stage after the
quickstart scenario" is a tested property, not a claim.
"""

from __future__ import annotations

from typing import NamedTuple, TYPE_CHECKING

from repro.core import FilterRule, TracepointSpec, TracingSpec, VNetTracer
from repro.experiments.topologies import build_two_host_kvm
from repro.net.packet import IPPROTO_UDP
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import StatsSampler
from repro.sim import ShardedEngine, engine_factory
from repro.sim.engine import Engine
from repro.workloads.sockperf import SockperfClient, SockperfServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.streaming import StreamingAggregator
    from repro.tracing.spans import SpanForest

QUICKSTART_CHAIN = ["vm1:udp_send", "host1:wire-out", "host2:wire-in", "vm2:app-copy"]


class ScenarioResult(NamedTuple):
    """Everything the CLI / tests need after the run."""

    engine: Engine
    tracer: VNetTracer
    registry: MetricsRegistry
    sampler: StatsSampler
    client: SockperfClient
    forest: "SpanForest"
    streaming: "StreamingAggregator"


def run_quickstart_scenario(
    seed: int = 42,
    duration_ns: int = 1_000_000_000,
    mps: int = 2000,
    sample_interval_ns: int = 50_000_000,
    shards: int = 2,
    window_ns: int = 100_000_000,
) -> ScenarioResult:
    """Run the quickstart tracing scenario and return its observability.

    The Sockperf client sends for ~60% of ``duration_ns`` (it starts
    only after clock synchronization completes, which takes the first
    ~60 ms of virtual time at the default 100 samples).

    ``shards`` > 0 runs the scenario on a compat-tier
    :class:`~repro.sim.ShardedEngine` (results are byte-identical to the
    plain engine; the differential suite proves it) so the ``shard``
    stage of the metrics contract is exercised by every scenario run;
    ``shards=0`` keeps the plain single-heap engine.
    """
    if shards:
        with engine_factory(lambda: ShardedEngine(shards=shards)):
            scene = build_two_host_kvm(seed=seed)
    else:
        scene = build_two_host_kvm(seed=seed)
    engine = scene.engine

    SockperfServer(scene.vm2.node, scene.vm2_ip)
    client = SockperfClient(scene.vm1.node, scene.vm1_ip, scene.vm2_ip, mps=mps)

    tracer = VNetTracer(engine)
    if isinstance(engine, ShardedEngine):
        engine.attach_metrics(tracer.obs)
    for kernel in (scene.host1.node, scene.host2.node, scene.vm1.node, scene.vm2.node):
        tracer.add_agent(kernel)
    sampler = tracer.attach_stats_sampler(interval_ns=sample_interval_ns)
    # The streaming query layer: tumbling windows over the quickstart
    # chain, with the deterministic live emitter on (docs/STREAMING.md).
    streaming = tracer.attach_streaming(
        QUICKSTART_CHAIN, window_ns=window_ns, emit_interval_ns=window_ns
    )

    sync = tracer.synchronize_clocks(
        scene.host1.node, scene.host1_ip, "dev:eth0",
        scene.host2.node, scene.host2_ip, "dev:eth0",
    )

    spec = TracingSpec(
        rule=FilterRule(dst_port=11111, protocol=IPPROTO_UDP),
        tracepoints=[
            TracepointSpec(node=scene.vm1.node.name, hook="kprobe:udp_send_skb",
                           label=QUICKSTART_CHAIN[0]),
            TracepointSpec(node=scene.host1.node.name, hook="dev:eth0",
                           label=QUICKSTART_CHAIN[1]),
            TracepointSpec(node=scene.host2.node.name, hook="dev:eth0",
                           label=QUICKSTART_CHAIN[2]),
            TracepointSpec(node=scene.vm2.node.name,
                           hook="kprobe:skb_copy_datagram_iovec",
                           label=QUICKSTART_CHAIN[3]),
        ],
    )

    traffic_ns = max(duration_ns * 6 // 10, 10_000_000)

    def after_sync(estimate) -> None:
        # The guest shares host2's clocksource; reuse the estimate.
        tracer.db.set_clock_skew(scene.vm2.node.name, estimate.skew_ns)
        tracer.deploy(spec)
        client.start(traffic_ns, start_delay_ns=5_000_000)

    previous = sync.on_done
    sync.on_done = lambda est: (previous(est), after_sync(est))

    engine.run(until=duration_ns)
    tracer.collect()
    streaming.close_all()  # flush the tail windows after final collection
    # Reconstruct the span forest so the ``tracing`` stage of the
    # metrics contract is exercised by every scenario run.
    forest = tracer.span_forest(QUICKSTART_CHAIN)
    sampler.sample_now()  # final snapshot so the series covers the full run
    return ScenarioResult(
        engine, tracer, tracer.obs, sampler, client, forest, streaming
    )


def quickstart_digest(seed: int = 42, duration_ns: int = 250_000_000) -> str:
    """16-hex-char digest of a small deterministic run (the
    ScenarioSpec registry's digest hook): the canonical streaming
    summary covers windows, sketches, and top-K, so any behavioural
    drift lands in it."""
    import hashlib

    result = run_quickstart_scenario(seed=seed, duration_ns=duration_ns)
    summary = result.streaming.summary_json()
    return hashlib.sha256(summary.encode()).hexdigest()[:16]
