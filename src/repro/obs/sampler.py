"""Periodic registry snapshots as time-series rows.

The :class:`StatsSampler` is scheduled on the simulation engine (never a
wall clock): every ``interval_ns`` of virtual time it flattens the
registry into one row, computes per-counter rates against the previous
row, and updates any derived rate gauges (e.g. the collector's ingest
rate).  Rows accumulate in memory; :mod:`repro.obs.export` renders them
as JSON for pipeline-health reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs import contract
from repro.obs.registry import Gauge, MetricsRegistry, _label_suffix, _labels_key
from repro.sim.engine import Engine


class StatsSampler:
    """Snapshot the registry into time-series rows on an engine timer."""

    def __init__(
        self,
        engine: Engine,
        registry: MetricsRegistry,
        interval_ns: int = 50_000_000,
    ):
        if interval_ns <= 0:
            raise ValueError(f"sampler interval must be positive, got {interval_ns}")
        self.engine = engine
        self.registry = registry
        self.interval_ns = interval_ns
        self.rows: List[Dict] = []
        self._samples_total = registry.register_spec(contract.SAMPLER_SAMPLES)
        self._prev_counters: Dict[str, float] = {}
        self._prev_t_ns: Optional[int] = None
        # The window base *before* the previous sample, so a same-instant
        # re-sample can rewind and keep its rates meaningful.
        self._prev2_counters: Dict[str, float] = {}
        self._prev2_t_ns: Optional[int] = None
        self._rate_gauges: List[tuple] = []  # (gauge, counter flat key, labels)
        self._timer = None
        self._running = False

    # -- derived gauges ----------------------------------------------------

    def add_rate_gauge(self, gauge: Gauge, counter_flat_key: str,
                       labels: tuple = ()) -> None:
        """On every sample, set ``gauge`` to the per-second rate of the
        counter identified by its flattened key (``name`` or
        ``name{label="..."}`` as produced by ``registry.flatten()``)."""
        self._rate_gauges.append((gauge, counter_flat_key, labels))

    # -- scheduling --------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._timer = self.engine.schedule(self.interval_ns, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        if not self._running:
            return
        self.sample_now()
        self._timer = self.engine.schedule(self.interval_ns, self._tick)

    # -- sampling ----------------------------------------------------------

    def sample_now(self) -> Dict:
        """Take one snapshot immediately; returns (and stores) the row.

        Two snapshots at the same virtual instant are one sample: the
        second *replaces* the first row and recomputes rates against
        the previous window base (a zero-width window has no rate).
        This is what makes a final ``sample_now()`` after an offline
        ``collect()`` -- which lands exactly on the last periodic tick
        -- report the collection burst's ingest rate instead of 0."""
        t_ns = self.engine.now
        if self.rows and self.rows[-1]["t_ns"] == t_ns:
            self.rows.pop()
            self._prev_counters = self._prev2_counters
            self._prev_t_ns = self._prev2_t_ns
        else:
            self._samples_total.inc()
        flat = self.registry.flatten()

        rates: Dict[str, float] = {}
        dt_ns = None if self._prev_t_ns is None else t_ns - self._prev_t_ns
        counter_keys = self._counter_flat_keys()
        if dt_ns and dt_ns > 0:
            for key in counter_keys:
                delta = flat.get(key, 0.0) - self._prev_counters.get(key, 0.0)
                rates[key] = delta * 1e9 / dt_ns
        for gauge, counter_key, labels in self._rate_gauges:
            gauge.set(rates.get(counter_key, 0.0), labels)
            # Reflect the derived value in this row too.
            suffix_key = _gauge_flat_key(gauge, labels)
            flat[suffix_key] = rates.get(counter_key, 0.0)

        self._prev2_counters, self._prev2_t_ns = self._prev_counters, self._prev_t_ns
        self._prev_counters = {key: flat.get(key, 0.0) for key in counter_keys}
        self._prev_t_ns = t_ns

        row = {"t_ns": t_ns, "values": flat, "rates_per_s": rates}
        self.rows.append(row)
        return row

    def _counter_flat_keys(self) -> List[str]:
        keys = []
        for metric in self.registry.metrics():
            if metric.spec.kind != "counter":
                continue
            prefix = metric.spec.name
            for key, _ in metric.samples():
                keys.append(prefix + _label_suffix(metric.spec.label_names, key))
        return keys

    def __repr__(self) -> str:
        state = "running" if self._running else "stopped"
        return f"<StatsSampler every {self.interval_ns}ns {state} rows={len(self.rows)}>"


def _gauge_flat_key(gauge: Gauge, labels: tuple) -> str:
    return gauge.spec.name + _label_suffix(gauge.spec.label_names, _labels_key(labels))
