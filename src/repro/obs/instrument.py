"""Pull-based instrumentation helpers.

The eBPF VM already maintains per-program counters on the hot path
(:attr:`BPFProgram.run_count`, :attr:`~BPFProgram.total_insns_executed`,
:attr:`~BPFProgram.helper_call_totals`, :attr:`~BPFProgram.total_cost_ns`);
re-counting them through the registry per probe firing would itself be
overhead.  Instead the tracer registers *callbacks* here that aggregate
program counters only when someone collects the registry -- the
observability layer charges the hot path nothing.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Tuple

from repro.obs import contract
from repro.obs.registry import MetricsRegistry

# Yields every eBPF program the pipeline has loaded (tracing scripts and
# clock-sync probes), including ones whose attachment was torn down --
# counters must stay monotone across redeployments.
ProgramsFn = Callable[[], Iterable]


def register_ebpf_metrics(registry: MetricsRegistry, programs_fn: ProgramsFn) -> None:
    """Register the ``ebpf`` stage's pull metrics over ``programs_fn``."""

    def by_mode(attr: str) -> Dict[Tuple[str, ...], float]:
        totals: Dict[Tuple[str, ...], float] = {}
        for program in programs_fn():
            key = (program.mode,)
            totals[key] = totals.get(key, 0.0) + getattr(program, attr)
        return totals

    def runs_by_mode() -> Dict[Tuple[str, ...], float]:
        totals = {("jit",): 0.0, ("interpreter",): 0.0}
        for program in programs_fn():
            totals[("jit",)] += program.jit_runs
            totals[("interpreter",)] += program.interp_runs
        return totals

    registry.register_spec(contract.EBPF_RUNS).add_callback(runs_by_mode)
    registry.register_spec(contract.EBPF_INSNS).add_callback(
        lambda: by_mode("total_insns_executed"))
    registry.register_spec(contract.EBPF_EXEC_NS).add_callback(
        lambda: sum(p.total_cost_ns for p in programs_fn()))
    registry.register_spec(contract.EBPF_PROGRAMS_LOADED).add_callback(
        lambda: sum(1 for _ in programs_fn()))
    registry.register_spec(contract.EBPF_COMPILE_PROGRAMS).add_callback(
        lambda: sum(p.compile_translations for p in programs_fn()))
    registry.register_spec(contract.EBPF_COMPILE_CACHE_HITS).add_callback(
        lambda: sum(p.compile_cache_hits for p in programs_fn()))

    def helper_totals() -> Dict[Tuple[str, ...], float]:
        totals: Dict[Tuple[str, ...], float] = {}
        for program in programs_fn():
            for helper, count in program.helper_call_totals.items():
                key = (helper,)
                totals[key] = totals.get(key, 0.0) + count
        return totals

    registry.register_spec(contract.EBPF_HELPER_CALLS).add_callback(helper_totals)
