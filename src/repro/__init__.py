"""Reproduction of vNetTracer (Suo, Zhao, Chen, Rao -- ICDCS 2018):
efficient and programmable packet tracing in virtualized networks.

The package provides:

* :mod:`repro.core` -- vNetTracer itself (dispatcher, agents, eBPF
  script compiler, ring buffers, collector, trace DB, clock sync,
  metrics), entry point :class:`repro.core.VNetTracer`;
* :mod:`repro.ebpf` -- an eBPF substrate built from scratch: ISA,
  assembler, verifier, interpreter VM, maps, helpers, probes;
* :mod:`repro.net` -- a simulated Linux network stack: packets with
  real header layouts, devices (veth/bridge/VXLAN/NIC), softirqs, RPS,
  sockets, UDP and TCP;
* :mod:`repro.virt` -- hypervisor substrates: KVM/virtio, Xen
  netfront/netback with a credit2-style scheduler, Open vSwitch,
  containers and overlay networks;
* :mod:`repro.workloads` -- Sockperf, iPerf, Netperf, memcached (Data
  Caching), CPU hogs;
* :mod:`repro.baselines` -- a SystemTap-style tracer for the overhead
  comparison;
* :mod:`repro.sim` -- the deterministic discrete-event engine.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproduction index.
"""

from repro.core import (
    ActionSpec,
    CollectReport,
    DeployReport,
    FilterRule,
    GlobalConfig,
    TracepointSpec,
    TracerSession,
    TracingSpec,
    VNetTracer,
)
from repro.faults import ChannelFaults, CrashEvent, FaultPlan, RingPressureEvent
from repro.net.traceid import TraceIDEngine
from repro.services import ServiceGraph
from repro.sim import Engine

__version__ = "1.0.0"

# The blessed public surface.  tests/test_repro_api.py asserts this list
# matches the README's "Public API" section -- update both together.
__all__ = [
    "VNetTracer",
    "TracerSession",
    "TracingSpec",
    "FilterRule",
    "TracepointSpec",
    "ActionSpec",
    "GlobalConfig",
    "FaultPlan",
    "ChannelFaults",
    "CrashEvent",
    "RingPressureEvent",
    "DeployReport",
    "CollectReport",
    "TraceIDEngine",
    "ServiceGraph",
    "Engine",
    "__version__",
]
