"""Command-line interface: regenerate paper figures from a shell.

    python -m repro.cli list
    python -m repro.cli run fig7a
    python -m repro.cli run fig10a --duration-ms 300 --seed 11
    python -m repro.cli run all
    python -m repro.cli stats
    python -m repro.cli stats --format prom --duration-ms 500
    python -m repro.cli timeline --format chrome --out trace.json
    python -m repro.cli timeline --trace-id 0xc2a5e8a3 --format text
    python -m repro.cli faults --seed 7 --format json
    python -m repro.cli watch --window-ms 100
    python -m repro.cli watch --deterministic
    python -m repro.cli scenarios
    python -m repro.cli rpc --requests 40
    python -m repro.cli rpc --deterministic
    python -m repro.cli bench --preset smoke
    python -m repro.cli bench --preset smoke --compare benchmarks/baseline.json

Each figure prints its paper-vs-measured block; `run all` walks the
whole evaluation (§IV).  The same runners back `benchmarks/`.

`stats` runs the quickstart tracing scenario with the self-observability
layer attached (see docs/OBSERVABILITY.md) and emits the pipeline's own
health metrics as a table, JSON, Prometheus text, or the sampled time
series.

`timeline` runs the same scenario, reconstructs per-packet span trees
(see docs/TIMELINES.md), and exports them as Chrome trace-event JSON
(loadable in Perfetto / chrome://tracing), OTLP-style JSON, or an
indented text rendering with critical-path and anomaly summaries.

`faults` runs the three-leg fault-equivalence experiment (fault-free,
faulty-with-retries, lossy-without-retries; see docs/FAULTS.md) and
exits non-zero if the resilient delivery layer fails the equivalence
or loss-accounting invariants.

`watch` runs the quickstart scenario with the streaming query layer
attached (see docs/STREAMING.md) and prints the closed window frames --
per-flow throughput, per-hop latency/jitter, percentile sketches, and
the top-K slowest flows -- as a table or JSON; `--deterministic` emits
one canonical JSON document the CI determinism job byte-diffs.

`scenarios` lists the shared ScenarioSpec registry (`repro.experiments`):
every runnable scenario with its builder / runner / digest references;
the bench harness and the determinism CI resolve from the same table.

`rpc` runs the multi-tier service scenario (see docs/SERVICES.md): a
declarative ServiceGraph compiled onto the simulated stack, every RPC
carrying its parent's trace ID, reconstructed into a cross-service span
forest; `--deterministic` emits one canonical JSON document the CI
determinism job byte-diffs (also across shard counts).

`bench` runs the benchmark harness over every `benchmarks/bench_*.py`
scenario, writes a schema-versioned `BENCH_<timestamp>.json`, and can
gate against `benchmarks/baseline.json` (exit code 1 on regression);
see docs/BENCHMARKS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict


def _fig4(args) -> None:
    from repro.experiments.clocksync_case import run_fig4_sweep

    for r in run_fig4_sweep(seed=args.seed):
        load = "loaded" if r.background_load else "idle"
        print(
            f"  offset {r.configured_offset_ns / 1e6:+7.1f} ms, "
            f"drift {r.configured_drift_ppm:+5.0f} ppm, {load:6s}: "
            f"true {r.true_skew_ns} ns, est {r.estimated_skew_ns} ns, "
            f"err {r.error_ns} ns"
        )


def _fig7a(args) -> None:
    from repro.experiments.overhead import run_fig7a

    r = run_fig7a(seed=args.seed, duration_ns=args.duration_ns)
    print(f"  baseline avg {r.baseline.avg_ns / 1e3:.2f} us, "
          f"traced avg {r.traced.avg_ns / 1e3:.2f} us "
          f"(+{r.avg_overhead_pct:.2f}%; paper <1%)")
    print(f"  p99.9 {r.baseline.p999_ns / 1e3:.2f} -> {r.traced.p999_ns / 1e3:.2f} us; "
          f"loss {r.baseline_loss} -> {r.traced_loss}; records {r.records_collected}")


def _fig7b(args) -> None:
    from repro.experiments.overhead import run_fig7b

    for gbps, paper in ((1.0, "10%"), (10.0, "26.5%")):
        r = run_fig7b(seed=args.seed, link_gbps=gbps, duration_ns=args.duration_ns)
        print(f"  {gbps:g}G: baseline {r.baseline_bps / 1e6:.0f} Mbps | "
              f"vNetTracer -{r.vnettracer_loss_pct:.1f}% | "
              f"SystemTap -{r.systemtap_loss_pct:.1f}% (paper {paper})")


def _fig8b(args) -> None:
    from repro.experiments.ovs_case import run_fig8b

    for case, summary in run_fig8b(seed=args.seed, duration_ns=args.duration_ns).items():
        s = summary.scaled()
        print(f"  Case {case:4s} avg {s['avg']:9.1f} us   p99.9 {s['p99.9']:9.1f} us")


def _fig9a(args) -> None:
    from repro.experiments.ovs_case import run_fig9a

    for case, d in run_fig9a(seed=args.seed, duration_ns=args.duration_ns).items():
        print(f"  Case {case:4s} sender {d['sender_stack'].avg_ns / 1e3:7.1f} us | "
              f"OVS {d['ovs'].avg_ns / 1e3:9.1f} us | "
              f"receiver {d['receiver_stack'].avg_ns / 1e3:7.1f} us")


def _fig9b(args) -> None:
    from repro.experiments.ovs_case import run_fig9b

    for key, summary in run_fig9b(seed=args.seed, duration_ns=args.duration_ns).items():
        s = summary.scaled()
        print(f"  {key:15s} avg {s['avg']:9.1f} us   p99.9 {s['p99.9']:9.1f} us")


def _fig10a(args) -> None:
    from repro.experiments.xen_case import run_fig10a

    results = run_fig10a(seed=args.seed, duration_ns=args.duration_ns)
    base = results["baseline"].sockperf
    for condition, r in results.items():
        s = r.sockperf.scaled()
        print(f"  {condition:20s} avg {s['avg']:8.1f} us  p99.9 {s['p99.9']:8.1f} us "
              f"({r.sockperf.p999_ns / base.p999_ns:.1f}x)")


def _fig10b(args) -> None:
    from repro.experiments.xen_case import run_fig10b

    results = run_fig10b(seed=args.seed, duration_ns=args.duration_ns)
    base = results["baseline"].latency
    for condition, r in results.items():
        s = r.latency.scaled()
        print(f"  {condition:20s} avg {s['avg']:8.1f} us ({r.latency.avg_ns / base.avg_ns:.1f}x)"
              f"  p99.9 {s['p99.9']:8.1f} us ({r.latency.p999_ns / base.p999_ns:.1f}x)")


def _fig11(args) -> None:
    from repro.experiments.xen_case import run_fig11_condition

    for condition in ("baseline", "shared"):
        r = run_fig11_condition(condition, seed=args.seed, packets=400)
        print(f"  [{condition}] (skew estimate {r.clock_skew_estimate_ns / 1e6:+.3f} ms)")
        for key, summary in r.segment_summaries.items():
            s = summary.scaled()
            print(f"    {key:40s} avg {s['avg']:8.1f} us  max {s['max']:8.1f} us")


def _fig12b(args) -> None:
    from repro.experiments.container_case import run_fig12b

    for name, pair in run_fig12b(seed=args.seed, duration_ns=args.duration_ns).items():
        print(f"  {name:12s} VM {pair.vm_bps / 1e9:6.2f} Gbps | "
              f"containers {pair.container_bps / 1e9:6.2f} Gbps | "
              f"ratio {pair.ratio * 100:5.1f}%")


def _fig13a(args) -> None:
    from repro.experiments.container_case import run_fig13a

    results = run_fig13a(seed=args.seed, duration_ns=args.duration_ns)
    for path, r in results.items():
        dist = ", ".join(f"cpu{c}:{f * 100:.1f}%" for c, f in r.cpu_distribution.items())
        print(f"  {path:10s} goodput {r.goodput_bps / 1e9:5.2f} Gbps | "
              f"net_rx_action {r.net_rx_rate_per_s:8.0f}/s | {dist}")
    ratio = results["container"].net_rx_rate_per_s / results["vm"].net_rx_rate_per_s
    print(f"  rate ratio {ratio:.2f}x (paper 4.54x)")


def _fig13b(args) -> None:
    from repro.experiments.container_case import run_fig13b

    for path, r in run_fig13b(seed=args.seed).items():
        print(f"  {path:10s} ({len(r.hops)} hops): {' -> '.join(r.hops)}")


FIGURES: Dict[str, Callable] = {
    "fig4": _fig4,
    "fig7a": _fig7a,
    "fig7b": _fig7b,
    "fig8b": _fig8b,
    "fig9a": _fig9a,
    "fig9b": _fig9b,
    "fig10a": _fig10a,
    "fig10b": _fig10b,
    "fig11": _fig11,
    "fig12b": _fig12b,
    "fig13a": _fig13a,
    "fig13b": _fig13b,
}


def _stats(args) -> None:
    from repro.analysis.reports import pipeline_health_report
    from repro.obs.export import prometheus_text, series_json, snapshot_json
    from repro.obs.scenario import run_quickstart_scenario

    result = run_quickstart_scenario(
        seed=args.seed if args.seed is not None else 42,
        duration_ns=args.duration_ns,
        sample_interval_ns=args.sample_interval_ms * 1_000_000,
    )
    if args.format == "json":
        print(snapshot_json(result.registry, t_ns=result.engine.now))
    elif args.format == "prom":
        print(prometheus_text(result.registry), end="")
    elif args.format == "series":
        print(series_json(result.sampler))
    else:
        print(pipeline_health_report(result.registry, sampler=result.sampler))


def _timeline(args) -> int:
    from repro.obs.scenario import QUICKSTART_CHAIN, run_quickstart_scenario
    from repro.tracing import (
        aggregate_hops,
        chrome_trace_json,
        critical_path,
        flag_anomalies,
        otlp_json,
        timeline_text,
    )
    from repro.tracing.spans import SpanForest

    result = run_quickstart_scenario(
        seed=args.seed, duration_ns=args.duration_ns, shards=args.shards
    )
    tracer = result.tracer
    complete_only = args.flow == "complete"
    forest = tracer.span_forest(QUICKSTART_CHAIN, complete_only=complete_only)
    if args.warm_cache:
        # Assemble again and export the cache-served forest: the
        # determinism CI job byte-diffs this against a cold-cache run.
        forest = tracer.span_forest(QUICKSTART_CHAIN, complete_only=complete_only)

    if args.trace_id is not None:
        tree = forest.tree_for(args.trace_id)
        if tree is None:
            known = tracer.db.trace_ids()
            print(
                f"timeline: trace 0x{args.trace_id:08x} not found "
                f"({len(known)} traces collected)",
                file=sys.stderr,
            )
            return 1
        forest = SpanForest(
            trees=[tree],
            orphan_records=forest.orphan_records,
            control_root=forest.control_root,
        )

    if args.format == "chrome":
        output = chrome_trace_json(forest)
    elif args.format == "otlp":
        output = otlp_json(forest)
    else:
        from repro.analysis.reports import format_ns

        lines = [timeline_text(forest)]
        if forest.trees:
            path = critical_path(forest.trees[0])
            lines.append("critical path (first tree):")
            lines.extend(
                f"  {span.name}: {format_ns(span.duration_ns)}" for span in path
            )
            lines.append("per-hop percentiles:")
            for stats in aggregate_hops(forest):
                lines.append(
                    f"  {stats.name}: p50 {format_ns(stats.p50_ns)} "
                    f"p95 {format_ns(stats.p95_ns)} p99 {format_ns(stats.p99_ns)}"
                )
            anomalies = flag_anomalies(forest, factor=args.anomaly_factor)
            lines.append(
                f"anomalies (> {args.anomaly_factor:g}x hop median): "
                f"{len(anomalies)}"
            )
            lines.extend(
                f"  0x{a.trace_id:08x} {a.name}: {format_ns(a.duration_ns)} "
                f"({a.ratio:.1f}x median {format_ns(a.median_ns)})"
                for a in anomalies[:10]
            )
        output = "\n".join(lines) + "\n"

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(output)
        print(f"wrote {args.out} ({len(forest)} trees, "
              f"{forest.span_count()} spans)")
    else:
        print(output, end="")
    return 0


def _faults(args) -> int:
    """Run the three-leg fault-equivalence experiment (docs/FAULTS.md)."""
    import json

    from repro.experiments.fault_case import run_fault_equivalence

    r = run_fault_equivalence(seed=args.seed, packets=args.packets)

    def leg(result):
        return {
            "rows": result.rows,
            "rows_by_label": result.rows_by_label,
            "deploy_retries": result.deploy_retries,
            "ship_retries": result.ship_retries,
            "deduped_batches": result.deduped_batches,
            "records_lost": result.records_lost,
            "records_lost_by_reason": result.records_lost_by_reason,
            "control_injected": int(result.metrics.get("control_injected", 0)),
            "shipment_injected": int(result.metrics.get("shipment_injected", 0)),
        }

    doc = {
        "seed": args.seed,
        "packets": args.packets,
        "legs": {
            "baseline": leg(r.baseline),
            "faulty_with_retries": leg(r.faulty),
            "lossy_no_retries": leg(r.lossy_no_retries),
        },
        "invariants": {
            "rows_match": r.rows_match,
            "decomposition_match": r.decomposition_match,
            "timeline_match": r.timeline_match,
            "streaming_match": r.streaming_match,
            "loss_accounted": r.loss_accounted,
        },
    }
    if args.format == "json":
        # Canonical form: the CI determinism job byte-diffs two runs.
        print(json.dumps(doc, sort_keys=True, indent=2))
    else:
        b, f, lossy = r.baseline, r.faulty, r.lossy_no_retries
        print(f"fault equivalence (seed {args.seed}, {args.packets} packets/leg)")
        print(f"  fault-free        rows {b.rows}  {b.rows_by_label}")
        print(f"  faulty + retries  rows {f.rows}  "
              f"deploy retries {f.deploy_retries}, ship retries {f.ship_retries}, "
              f"deduped batches {f.deduped_batches}")
        print(f"  lossy, no retries rows {lossy.rows}  "
              f"lost {lossy.records_lost} {lossy.records_lost_by_reason}")
        print(f"  rows match            {r.rows_match}")
        print(f"  decomposition match   {r.decomposition_match}")
        print(f"  timeline match        {r.timeline_match}")
        print(f"  streaming match       {r.streaming_match}")
        print(f"  loss accounted        {r.loss_accounted}")
    ok = r.equivalent and r.loss_accounted
    if not ok:
        print("faults: equivalence invariant violated", file=sys.stderr)
    return 0 if ok else 1


def _watch(args) -> None:
    """Stream the quickstart scenario's closed window frames
    (docs/STREAMING.md)."""
    import json

    from repro.obs.registry import estimate_quantile
    from repro.obs.scenario import run_quickstart_scenario
    from repro.streaming import canonical_json

    result = run_quickstart_scenario(
        seed=args.seed,
        duration_ns=args.duration_ns,
        window_ns=args.window_ms * 1_000_000,
    )
    agg = result.streaming

    if args.deterministic or args.format == "json":
        doc = {
            "chain": list(agg.config.chain),
            "window_ns": agg.config.window_ns,
            "frames": agg.frames_as_dicts(),
            "snapshots": agg.snapshots,
            "summary": agg.summary(),
        }
        if args.deterministic:
            print(canonical_json(doc))
        else:
            print(json.dumps(doc, sort_keys=True, indent=2))
        return

    chain = agg.config.chain
    e2e = f"{chain[0]}->{chain[-1]}"
    bounds = agg.config.sketch_bounds
    print(
        f"watch: {agg.windows_closed} windows x "
        f"{agg.config.window_ns / 1e6:g} ms over {' -> '.join(chain)}"
    )
    print(
        f"  {agg.records} records, {agg.late_records} late, "
        f"{agg.gap_notices} gap notices"
    )
    print(f"{'window':>8} {'start ms':>10} {'records':>8} "
          f"{'e2e n':>6} {'avg us':>9} {'p99 us':>9}")
    for frame in agg.frames:
        hop = frame.hops.get(e2e)
        if hop:
            n = hop["count"]
            avg = f"{hop['sum_ns'] / n / 1e3:9.1f}"
            p99 = estimate_quantile(bounds, hop["sketch"], 0.99)
            p99 = f"{p99 / 1e3:9.1f}" if p99 is not None else f"{'-':>9}"
            n = f"{n:6d}"
        else:
            n, avg, p99 = f"{'-':>6}", f"{'-':>9}", f"{'-':>9}"
        print(f"{frame.index:>8} {frame.start_ns / 1e6:>10.1f} "
              f"{frame.records:>8} {n} {avg} {p99}")
    summary = agg.summary()
    print("run totals:")
    for key, hop in summary["hops"].items():
        if not hop["count"]:
            continue
        p50 = hop["p50_ns"] / 1e3 if hop["p50_ns"] is not None else 0.0
        p99 = hop["p99_ns"] / 1e3 if hop["p99_ns"] is not None else 0.0
        print(f"  {key:45s} n={hop['count']:<6d} "
              f"p50 {p50:8.1f} us  p99 {p99:8.1f} us")
    slowest = ", ".join(
        f"0x{entry['trace_id']:08x}={entry['latency_ns'] / 1e3:.1f}us"
        for entry in summary["top_k_slowest"][:5]
    )
    print(f"  top slowest: {slowest}")


def _scenarios(args) -> None:
    """List the shared ScenarioSpec registry (repro.experiments)."""
    from repro.experiments import SCENARIOS, scenario_names

    width = max(len(name) for name in scenario_names())
    for name in scenario_names():
        spec = SCENARIOS[name]
        print(f"{name:<{width}}  {spec.title}")
        if args.verbose:
            print(f"{'':<{width}}    build:  {spec.build}")
            print(f"{'':<{width}}    run:    {spec.run}")
            print(f"{'':<{width}}    digest: {spec.digest}")


def _rpc(args) -> int:
    """Run the multi-tier RPC scenario (docs/SERVICES.md)."""
    import json

    from repro.experiments import get_scenario
    from repro.experiments.rpc_case import deterministic_doc
    from repro.streaming import canonical_json

    run = get_scenario("rpc_case").run_fn()
    result = run(seed=args.seed, requests=args.requests, shards=args.shards)

    if args.format == "chrome":
        output = result.chrome_json
    elif args.deterministic or args.format == "json":
        doc = deterministic_doc(result)
        if args.deterministic:
            output = canonical_json(doc) + "\n"
        else:
            output = json.dumps(doc, sort_keys=True, indent=2) + "\n"
    else:
        deployment = result.deployment
        latencies = deployment.client_latencies
        lines = [
            f"rpc: {deployment.completed_requests}/{args.requests} requests "
            f"completed over {len(deployment.nodes)} nodes "
            f"({len(result.forest.trees)} trees, "
            f"{result.forest.span_count()} spans, "
            f"{len(deployment.links)} parent links)"
        ]
        if latencies:
            lines.append(
                f"  latency: min {min(latencies) / 1e3:.1f} us  "
                f"avg {sum(latencies) / len(latencies) / 1e3:.1f} us  "
                f"max {max(latencies) / 1e3:.1f} us"
            )
        for tier in deployment.graph.tiers:
            replicas = deployment.services[tier.name]
            lines.append(
                f"  {tier.name:10s} x{len(replicas)}  "
                f"requests {sum(s.requests_handled for s in replicas):4d}  "
                f"responses {sum(s.responses_sent for s in replicas):4d}  "
                f"calls issued {sum(s.calls_issued for s in replicas):4d}"
            )
        output = "\n".join(lines) + "\n"

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(output)
        print(f"wrote {args.out}")
    else:
        print(output, end="")
    return 0


def _bench(args) -> int:
    from repro.bench import (
        build_report,
        compare_reports,
        discover_scenarios,
        dumps_report,
        find_bench_dir,
        load_report,
        run_suite,
        write_report,
    )
    from repro.bench.discovery import DiscoveryError
    from repro.bench.schema import SchemaError

    try:
        bench_dir = find_bench_dir(args.bench_dir)
        if args.list:
            for scenario in discover_scenarios(bench_dir):
                print(scenario.name)
            return 0
        progress = None if args.json else print
        profile = None
        if args.profile is not None:
            import cProfile

            profile = cProfile.Profile()
            profile.enable()
        results = run_suite(
            preset=args.preset, only=args.only or None, bench_dir=bench_dir,
            progress=progress, repeat=args.repeat,
        )
        if profile is not None:
            profile.disable()
        report = build_report(results, args.preset, deterministic=args.deterministic)
        if args.json:
            print(dumps_report(report), end="")
        if args.out != "-":
            out = args.out or time.strftime("BENCH_%Y%m%dT%H%M%SZ.json", time.gmtime())
            path = write_report(report, out)
            if not args.json:
                print(f"wrote {path}")
        if args.update_baseline:
            baseline_doc = build_report(
                results, args.preset, deterministic=False, tolerance=args.tolerance
            )
            path = write_report(baseline_doc, bench_dir / "baseline.json")
            if not args.json:
                print(f"updated baseline {path}")
        exit_code = 0
        if args.compare:
            baseline = load_report(args.compare)
            regressions, lines = compare_reports(report, baseline)
            stream = sys.stderr if args.json else sys.stdout
            for line in lines:
                print(line, file=stream)
            if regressions:
                print(f"\n{len(regressions)} regression(s) beyond the "
                      f"baseline tolerance:", file=stream)
                for regression in regressions:
                    print(f"  {regression.describe()}", file=stream)
                exit_code = 1
            else:
                print("no regressions beyond the baseline tolerance", file=stream)
        if profile is not None:
            # Strictly after every line of report output, and only once
            # stdout is flushed: with ``--json --out -`` the report must
            # stay one contiguous parseable document even when stdout
            # and stderr share a pipe.
            sys.stdout.flush()
            _print_profile(profile, args.profile)
        return exit_code
    except (DiscoveryError, SchemaError) as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2


def _print_profile(profile, top_n: int, stream=None) -> None:
    """Top-N cumulative-time functions of a finished cProfile run, so
    perf PRs can cite a profile instead of guessing (stderr: keeps
    ``--json`` stdout parseable)."""
    import pstats

    stream = stream if stream is not None else sys.stderr
    print(f"\n-- profile: top {top_n} functions by cumulative time --",
          file=stream)
    stats = pstats.Stats(profile, stream=stream)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top_n)


def _trace_id(text: str) -> int:
    """Trace IDs as the tools print them: 0x-prefixed hex or decimal."""
    try:
        return int(text, 0)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a trace ID like 0xc2a5e8a3 or 1234, got {text!r}"
        )


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {text!r}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {text!r}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate vNetTracer paper figures."
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available figures")
    run = sub.add_parser("run", help="run one figure (or 'all')")
    run.add_argument("figure", choices=sorted(FIGURES) + ["all"])
    run.add_argument("--seed", type=int, default=None,
                     help="experiment seed (default: each runner's own)")
    run.add_argument("--duration-ms", type=int, default=400,
                     help="virtual measurement window per scenario")
    stats = sub.add_parser(
        "stats", help="run the quickstart scenario and emit pipeline-health metrics"
    )
    stats.add_argument("--seed", type=int, default=42)
    stats.add_argument("--duration-ms", type=_positive_int, default=1000,
                       help="virtual duration of the scenario")
    stats.add_argument("--sample-interval-ms", type=_positive_int, default=50,
                       help="stats sampler period (virtual ms)")
    stats.add_argument("--format", choices=("table", "json", "prom", "series"),
                       default="table", help="output format")
    timeline = sub.add_parser(
        "timeline",
        help="reconstruct per-packet span trees and export a timeline "
             "(docs/TIMELINES.md)",
    )
    timeline.add_argument("--seed", type=int, default=42)
    timeline.add_argument("--duration-ms", type=_positive_int, default=1000,
                          help="virtual duration of the scenario")
    timeline.add_argument("--trace-id", type=_trace_id, default=None,
                          help="export a single trace (hex like 0xc2a5e8a3 "
                               "or decimal)")
    timeline.add_argument("--flow", choices=("complete", "all"),
                          default="complete",
                          help="'complete' keeps only traces observed at "
                               "every tracepoint; 'all' keeps partial ones")
    timeline.add_argument("--format", choices=("chrome", "otlp", "text"),
                          default="chrome",
                          help="chrome = Perfetto-loadable trace-event JSON; "
                               "otlp = OTLP-style JSON; text = indented trees")
    timeline.add_argument("--out", metavar="PATH", default=None,
                          help="write to a file instead of stdout")
    timeline.add_argument("--anomaly-factor", type=float, default=3.0,
                          help="text format: flag spans above this multiple "
                               "of their hop's flow median")
    timeline.add_argument("--shards", type=_nonnegative_int, default=2,
                          metavar="N",
                          help="engine shard count for the scenario run; 0 = "
                               "plain single-heap engine (output is "
                               "byte-identical at any count; the CI "
                               "determinism job diffs 1 vs 4)")
    timeline.add_argument("--warm-cache", action="store_true",
                          help="assemble the forest twice and export the "
                               "second, cache-served copy (byte-identical "
                               "to the cold one; the CI determinism job "
                               "diffs the two)")
    faults = sub.add_parser(
        "faults",
        help="run the fault-equivalence experiment: resilient delivery "
             "under injected faults (docs/FAULTS.md)",
    )
    faults.add_argument("--seed", type=int, default=7,
                        help="fault-plan and scenario seed")
    faults.add_argument("--packets", type=_positive_int, default=200,
                        help="traced packets per leg")
    faults.add_argument("--format", choices=("summary", "json"),
                        default="summary",
                        help="json = canonical byte-diffable report")
    watch = sub.add_parser(
        "watch",
        help="run the quickstart scenario with the streaming query layer "
             "and print live window frames (docs/STREAMING.md)",
    )
    watch.add_argument("--seed", type=int, default=42)
    watch.add_argument("--duration-ms", type=_positive_int, default=1000,
                       help="virtual duration of the scenario")
    watch.add_argument("--window-ms", type=_positive_int, default=100,
                       help="tumbling window width (virtual ms)")
    watch.add_argument("--format", choices=("table", "json"), default="table",
                       help="output format")
    watch.add_argument("--deterministic", action="store_true",
                       help="emit one canonical JSON document (byte-diffable; "
                            "the CI determinism job diffs two runs)")
    scenarios = sub.add_parser(
        "scenarios",
        help="list the shared ScenarioSpec registry (repro.experiments)",
    )
    scenarios.add_argument("--verbose", action="store_true",
                           help="also print each spec's build/run/digest "
                                "references")
    rpc = sub.add_parser(
        "rpc",
        help="run the multi-tier RPC service scenario and export the "
             "cross-service span forest (docs/SERVICES.md)",
    )
    rpc.add_argument("--seed", type=int, default=21)
    rpc.add_argument("--requests", type=_positive_int, default=40,
                     help="root requests issued by the client tier")
    rpc.add_argument("--shards", type=int, default=1,
                     help="ShardedEngine shard count (0 = plain engine); "
                          "output is byte-identical at any count")
    rpc.add_argument("--format", choices=("summary", "json", "chrome"),
                     default="summary",
                     help="chrome = Perfetto-loadable trace-event JSON of "
                          "the RPC span forest")
    rpc.add_argument("--deterministic", action="store_true",
                     help="emit one canonical JSON document (byte-diffable; "
                          "the CI determinism job diffs runs and shard "
                          "counts)")
    rpc.add_argument("--out", metavar="PATH", default=None,
                     help="write to a file instead of stdout")
    bench = sub.add_parser(
        "bench", help="run the benchmark harness over benchmarks/bench_*.py"
    )
    bench.add_argument("--preset", choices=("smoke", "full"), default="smoke",
                       help="workload scale (smoke ~= 10%% of full durations)")
    bench.add_argument("--only", action="append", metavar="NAME",
                       help="run only the named scenario(s); repeatable")
    bench.add_argument("--json", action="store_true",
                       help="print the report JSON to stdout")
    bench.add_argument("--out", metavar="PATH", default=None,
                       help="report file (default BENCH_<timestamp>.json; '-' skips)")
    bench.add_argument("--compare", metavar="BASELINE",
                       help="compare against a baseline report; exit 1 on regression")
    bench.add_argument("--update-baseline", action="store_true",
                       help="rewrite benchmarks/baseline.json from this run")
    bench.add_argument("--tolerance", type=float, default=0.5,
                       help="tolerance recorded with --update-baseline (default 0.5)")
    bench.add_argument("--repeat", type=_positive_int, default=1, metavar="N",
                       help="run each scenario N times and keep the fastest "
                            "run (wall clock, counters, and metrics all from "
                            "that run); best-of-N damps scheduler jitter "
                            "(default 1)")
    bench.add_argument("--profile", type=int, nargs="?", const=25, default=None,
                       metavar="N",
                       help="wrap the run in cProfile and print the top N "
                            "functions by cumulative time (default 25) to "
                            "stderr")
    bench.add_argument("--deterministic", action="store_true",
                       help="emit only simulation-derived fields (byte-diffable)")
    bench.add_argument("--list", action="store_true",
                       help="list discovered scenarios and exit")
    bench.add_argument("--bench-dir", metavar="DIR", default=None,
                       help="benchmarks directory (default: auto-detect)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(FIGURES):
            print(name)
        return 0
    if args.command == "bench":
        return _bench(args)
    if args.command == "faults":
        return _faults(args)
    if args.command == "scenarios":
        _scenarios(args)
        return 0
    if args.command == "rpc":
        return _rpc(args)

    args.duration_ns = args.duration_ms * 1_000_000
    if args.command == "stats":
        _stats(args)
        return 0
    if args.command == "watch":
        _watch(args)
        return 0
    if args.command == "timeline":
        return _timeline(args)
    if args.seed is None:
        # Each runner has its own default seed; expose a common one.
        class _Defaults:
            pass

        args.seed = 7 if args.figure in ("fig4", "fig7a") else {
            "fig7b": 11, "fig8b": 13, "fig9a": 13, "fig9b": 13,
            "fig10a": 17, "fig10b": 17, "fig11": 17,
            "fig12b": 23, "fig13a": 23, "fig13b": 23,
        }.get(args.figure, 7)

    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        print(f"== {name} ==")
        started = time.time()
        if args.figure == "all":
            args.seed = {"fig7b": 11, "fig8b": 13, "fig9a": 13, "fig9b": 13,
                         "fig10a": 17, "fig10b": 17, "fig11": 17, "fig12b": 23,
                         "fig13a": 23, "fig13b": 23}.get(name, 7)
        FIGURES[name](args)
        print(f"  ({time.time() - started:.1f} s wall)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
