"""Find benchmark scenarios and their ``run(preset)`` entry points.

A scenario is any ``benchmarks/bench_*.py`` file exposing a module-level
``run(preset: str) -> dict`` function.  The same files double as
pytest-benchmark tests; discovery loads them by path (the benchmarks
directory is not a package) under synthetic module names so imports
never collide with installed packages.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path
from typing import Callable, Dict, List, NamedTuple, Optional

_MODULE_PREFIX = "repro_bench_scenario_"


class DiscoveryError(RuntimeError):
    """The benchmarks directory (or a scenario inside it) is unusable."""


class BenchScenario(NamedTuple):
    """One runnable benchmark scenario."""

    name: str  # bench file stem without the ``bench_`` prefix
    path: Path

    def load(self) -> Callable[[str], Dict]:
        """Import the bench file and return its ``run`` entry point."""
        spec = importlib.util.spec_from_file_location(
            _MODULE_PREFIX + self.name,
            self.path,
        )
        if spec is None or spec.loader is None:  # pragma: no cover - importlib guard
            raise DiscoveryError(f"cannot import scenario {self.path}")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        run = getattr(module, "run", None)
        if not callable(run):
            raise DiscoveryError(f"scenario {self.path.name} has no run(preset) entry point")
        return run


def find_bench_dir(explicit: Optional[Path] = None) -> Path:
    """Locate the benchmarks directory.

    Tries, in order: an explicit path, the repository checkout this
    package was imported from (editable installs), and ``./benchmarks``.
    """
    candidates = []
    if explicit is not None:
        candidates.append(Path(explicit))
    # src/repro/bench/discovery.py -> repo root is three levels above src/.
    candidates.append(Path(__file__).resolve().parents[3] / "benchmarks")
    candidates.append(Path.cwd() / "benchmarks")
    for candidate in candidates:
        if candidate.is_dir() and any(candidate.glob("bench_*.py")):
            return candidate
    raise DiscoveryError(
        "no benchmarks directory with bench_*.py files found "
        f"(looked in: {', '.join(str(c) for c in candidates)})"
    )


def discover_scenarios(
    bench_dir: Optional[Path] = None, only: Optional[List[str]] = None
) -> List[BenchScenario]:
    """All scenarios in ``bench_dir``, sorted by name.

    ``only`` filters by scenario name (exact match, ``bench_`` prefix
    optional); asking for an unknown name is an error, not a silent
    empty run.
    """
    directory = find_bench_dir(bench_dir)
    scenarios = [
        BenchScenario(path.stem.removeprefix("bench_"), path)
        for path in sorted(directory.glob("bench_*.py"))
    ]
    if only:
        wanted = {name.removeprefix("bench_") for name in only}
        unknown = wanted - {s.name for s in scenarios}
        if unknown:
            raise DiscoveryError(
                f"unknown scenario(s) {sorted(unknown)}; "
                f"available: {[s.name for s in scenarios]}"
            )
        scenarios = [s for s in scenarios if s.name in wanted]
    return scenarios
