"""The benchmark harness (`repro bench`).

The 18+ ``benchmarks/bench_*.py`` scenario files each expose a tiny
``run(preset)`` entry point; this package discovers them, runs them
under a preset (``smoke``/``full``), times wall-clock and the engine's
event throughput, and writes schema-versioned JSON reports
(``BENCH_<timestamp>.json``) that can be diffed against a committed
``benchmarks/baseline.json`` to gate performance regressions in CI.

See ``docs/BENCHMARKS.md`` for the schema, presets, and workflow.
"""

from repro.bench.compare import DEFAULT_TOLERANCE, Regression, compare_reports
from repro.bench.discovery import BenchScenario, discover_scenarios, find_bench_dir
from repro.bench.harness import ScenarioResult, run_scenario, run_suite
from repro.bench.presets import PRESETS, check_preset, scale_count, scale_duration
from repro.bench.schema import (
    SCHEMA_VERSION,
    build_report,
    dumps_report,
    load_report,
    validate_report,
    write_report,
)

__all__ = [
    "BenchScenario",
    "DEFAULT_TOLERANCE",
    "PRESETS",
    "Regression",
    "SCHEMA_VERSION",
    "ScenarioResult",
    "build_report",
    "check_preset",
    "compare_reports",
    "discover_scenarios",
    "dumps_report",
    "find_bench_dir",
    "load_report",
    "run_scenario",
    "run_suite",
    "scale_count",
    "scale_duration",
    "validate_report",
    "write_report",
]
