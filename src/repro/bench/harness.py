"""Run scenarios and measure them.

For every scenario the harness measures host wall-clock time plus two
process-wide simulation counters snapshotted around the run:

* :meth:`Engine.global_events_executed` -- discrete events executed by
  every engine the scenario built (the sim-core hot path);
* :meth:`BPFProgram.global_runs` -- eBPF program executions, i.e. probe
  fires (the per-packet tracing hot path the paper's overhead claims
  are about).

From those it derives ``events_per_sec`` (host throughput of the event
loop) and ``ns_per_probe`` (host nanoseconds per probe fire), the two
numbers the regression gate compares against the committed baseline.
"""

from __future__ import annotations

import gc
import time
from pathlib import Path
from typing import Callable, Dict, List, NamedTuple, Optional

from repro.bench.discovery import BenchScenario, discover_scenarios
from repro.bench.presets import check_preset
from repro.ebpf.vm import BPFProgram
from repro.sim.engine import Engine


class HarnessError(RuntimeError):
    """A scenario misbehaved (bad return type, raised, ...)."""


class ScenarioResult(NamedTuple):
    """Measurements for one scenario run."""

    name: str
    preset: str
    wall_ns: int
    events_executed: int
    probe_fires: int
    metrics: Dict[str, object]  # scenario-reported, simulation-deterministic

    @property
    def events_per_sec(self) -> float:
        if self.wall_ns <= 0:
            return 0.0
        return self.events_executed / (self.wall_ns / 1e9)

    @property
    def ns_per_probe(self) -> Optional[float]:
        """Host ns per probe fire; None for scenarios without probes."""
        if self.probe_fires <= 0:
            return None
        return self.wall_ns / self.probe_fires


def run_scenario(
    scenario: BenchScenario, preset: str = "smoke", repeat: int = 1
) -> ScenarioResult:
    """Load and execute one scenario under ``preset``.

    With ``repeat > 1`` the scenario runs that many times and the
    fastest run wins: wall clock, counters, and scenario metrics are
    all taken from the best run, never mixed across runs.  Best-of-N
    is the standard defense against scheduler and allocator jitter --
    the minimum is the run with the least interference, so it is the
    most reproducible point of the distribution (see
    docs/BENCHMARKS.md)."""
    check_preset(preset)
    if repeat < 1:
        raise HarnessError(f"repeat must be >= 1, got {repeat}")
    run = scenario.load()
    best: Optional[ScenarioResult] = None
    for _ in range(repeat):
        # Keep collector pauses out of the timed window: collect what
        # earlier scenarios (or runs) left behind, then freeze the
        # surviving heap so full collections triggered *during* the
        # window scan only this run's own allocations -- without this, a
        # microbenchmark's number depends on how much live data the
        # scenarios before it happened to build.
        gc.collect()
        gc.freeze()
        events_before = Engine.global_events_executed()
        fires_before = BPFProgram.global_runs()
        try:
            started = time.perf_counter_ns()
            metrics = run(preset)
            wall_ns = time.perf_counter_ns() - started
        finally:
            gc.unfreeze()
        events = Engine.global_events_executed() - events_before
        fires = BPFProgram.global_runs() - fires_before
        if not isinstance(metrics, dict):
            raise HarnessError(
                f"scenario {scenario.name}: run(preset) must return a dict of "
                f"metrics, got {type(metrics).__name__}"
            )
        result = ScenarioResult(
            name=scenario.name,
            preset=preset,
            wall_ns=wall_ns,
            events_executed=events,
            probe_fires=fires,
            metrics=metrics,
        )
        if best is None or result.wall_ns < best.wall_ns:
            best = result
    assert best is not None  # repeat >= 1
    return best


def run_suite(
    preset: str = "smoke",
    only: Optional[List[str]] = None,
    bench_dir: Optional[Path] = None,
    progress: Optional[Callable[[str], None]] = None,
    repeat: int = 1,
) -> List[ScenarioResult]:
    """Discover and run scenarios; ``progress`` gets one line per scenario."""
    check_preset(preset)
    results = []
    for scenario in discover_scenarios(bench_dir, only=only):
        result = run_scenario(scenario, preset, repeat=repeat)
        results.append(result)
        if progress is not None:
            nspp = result.ns_per_probe
            tail = f"{nspp:9.0f} ns/probe" if nspp is not None else "  (no probes)"
            progress(
                f"{result.name:32s} {result.wall_ns / 1e9:7.2f}s  "
                f"{result.events_executed:>9d} events  "
                f"{result.events_per_sec / 1e3:8.1f}k ev/s  {tail}"
            )
    return results
