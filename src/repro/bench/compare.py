"""Compare a bench run against a committed baseline (the CI gate).

The baseline file (``benchmarks/baseline.json``) is a normal report
plus a ``tolerance`` field: the fraction of throughput a scenario may
lose before the comparison fails.  Host-speed metrics are noisy across
machines, so the shipped tolerance is deliberately generous -- the gate
exists to catch *algorithmic* regressions (2x slowdowns from an
accidental O(n) rescan), not 5% jitter.

Checked per scenario present in the baseline:

* the scenario still exists in the current run (coverage cannot
  silently shrink);
* ``events_per_sec`` did not drop below ``baseline * (1 - tolerance)``;
* ``ns_per_probe`` did not grow beyond ``baseline / (1 - tolerance)``
  (only when both reports measured probes).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

DEFAULT_TOLERANCE = 0.5


class Regression(NamedTuple):
    """One failed check."""

    scenario: str
    metric: str
    baseline: float
    current: float
    allowed: float

    def describe(self) -> str:
        if self.metric == "missing":
            return f"{self.scenario}: present in baseline but not in this run"
        return (
            f"{self.scenario}: {self.metric} {self.current:,.1f} vs baseline "
            f"{self.baseline:,.1f} (allowed {self.allowed:,.1f})"
        )


def compare_reports(current: Dict, baseline: Dict) -> Tuple[List[Regression], List[str]]:
    """Returns (regressions, human-readable summary lines)."""
    tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    current_by_name = {entry["name"]: entry for entry in current["scenarios"]}
    regressions: List[Regression] = []
    lines: List[str] = []
    if current.get("preset") != baseline.get("preset"):
        lines.append(
            f"note: preset mismatch (run={current.get('preset')}, "
            f"baseline={baseline.get('preset')}); comparing anyway"
        )
    for base in baseline["scenarios"]:
        name = base["name"]
        entry = current_by_name.get(name)
        if entry is None:
            regressions.append(Regression(name, "missing", 0.0, 0.0, 0.0))
            continue
        checks = []
        base_eps, cur_eps = base.get("events_per_sec"), entry.get("events_per_sec")
        if base_eps and cur_eps is not None:
            floor = base_eps * (1.0 - tolerance)
            checks.append(("events_per_sec", base_eps, cur_eps, floor, cur_eps >= floor))
        base_nspp, cur_nspp = base.get("ns_per_probe"), entry.get("ns_per_probe")
        if base_nspp and cur_nspp is not None:
            ceiling = base_nspp / (1.0 - tolerance)
            checks.append(("ns_per_probe", base_nspp, cur_nspp, ceiling, cur_nspp <= ceiling))
        for metric, base_value, cur_value, bound, ok in checks:
            ratio = cur_value / base_value if base_value else float("nan")
            status = "ok" if ok else "REGRESSION"
            lines.append(
                f"{name:32s} {metric:15s} {cur_value:>14,.1f}  "
                f"baseline {base_value:>14,.1f}  ({ratio:5.2f}x) {status}"
            )
            if not ok:
                regressions.append(Regression(name, metric, base_value, cur_value, bound))
    extra = sorted(set(current_by_name) - {b["name"] for b in baseline["scenarios"]})
    if extra:
        lines.append(f"note: scenarios not in baseline (unchecked): {', '.join(extra)}")
    return regressions, lines
