"""The benchmark report JSON schema (version 1).

A report is one JSON document::

    {
      "schema_version": 1,
      "preset": "smoke",
      "deterministic": false,
      "created_utc": "20260806T120000Z",      # absent when deterministic
      "host": {"python": "...", "platform": "..."},   # absent when deterministic
      "tolerance": 0.5,                        # only in baseline files
      "scenarios": [
        {
          "name": "fig7a_overhead_latency",
          "events_executed": 123456,
          "probe_fires": 2880,
          "metrics": {...},                    # scenario-reported, deterministic
          "wall_ns": 412345678,                # absent when deterministic
          "events_per_sec": 1234567.8,         # absent when deterministic
          "ns_per_probe": 532.1                # absent when deterministic / no probes
        }, ...
      ]
    }

``deterministic`` reports carry only simulation-derived fields, so two
runs with the same code and seeds are **byte-identical** -- that is what
the CI determinism job diffs.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.bench.harness import ScenarioResult
from repro.bench.presets import check_preset

SCHEMA_VERSION = 1


class SchemaError(ValueError):
    """A report document does not match the schema."""


def build_report(
    results: List[ScenarioResult],
    preset: str,
    deterministic: bool = False,
    tolerance: Optional[float] = None,
) -> Dict:
    """Assemble the report document for a suite run."""
    check_preset(preset)
    scenarios = []
    for result in sorted(results, key=lambda r: r.name):
        entry: Dict[str, object] = {
            "name": result.name,
            "events_executed": result.events_executed,
            "probe_fires": result.probe_fires,
            "metrics": result.metrics,
        }
        if not deterministic:
            entry["wall_ns"] = result.wall_ns
            entry["events_per_sec"] = round(result.events_per_sec, 1)
            if result.ns_per_probe is not None:
                entry["ns_per_probe"] = round(result.ns_per_probe, 1)
        scenarios.append(entry)
    doc: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "preset": preset,
        "deterministic": deterministic,
        "scenarios": scenarios,
    }
    if not deterministic:
        doc["created_utc"] = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
        doc["host"] = {
            "python": platform.python_version(),
            "platform": platform.platform(),
        }
    if tolerance is not None:
        doc["tolerance"] = tolerance
    return doc


def validate_report(doc: Dict) -> Dict:
    """Check the shape of a report document; returns it for chaining."""
    if not isinstance(doc, dict):
        raise SchemaError(f"report must be a JSON object, got {type(doc).__name__}")
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaError(f"unsupported schema_version {version!r} (expected {SCHEMA_VERSION})")
    check_preset(doc.get("preset", ""))
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list):
        raise SchemaError("report is missing its scenarios list")
    deterministic = bool(doc.get("deterministic", False))
    seen = set()
    for entry in scenarios:
        if not isinstance(entry, dict) or "name" not in entry:
            raise SchemaError(f"bad scenario entry: {entry!r}")
        name = entry["name"]
        if name in seen:
            raise SchemaError(f"duplicate scenario {name!r}")
        seen.add(name)
        for field in ("events_executed", "probe_fires"):
            if not isinstance(entry.get(field), int):
                raise SchemaError(f"scenario {name!r} is missing integer {field!r}")
        if not isinstance(entry.get("metrics"), dict):
            raise SchemaError(f"scenario {name!r} is missing its metrics dict")
        if not deterministic and not isinstance(entry.get("wall_ns"), int):
            raise SchemaError(f"scenario {name!r} is missing wall_ns")
    tolerance = doc.get("tolerance")
    if tolerance is not None:
        if not isinstance(tolerance, (int, float)) or not 0 < tolerance < 1:
            raise SchemaError(f"tolerance must be in (0, 1), got {tolerance!r}")
    return doc


def dumps_report(doc: Dict) -> str:
    """Canonical serialization (stable key order -> byte-diffable)."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def write_report(doc: Dict, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(dumps_report(validate_report(doc)))
    return path


def load_report(path: Union[str, Path]) -> Dict:
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SchemaError(f"cannot read report {path}: {exc}") from exc
    return validate_report(doc)
