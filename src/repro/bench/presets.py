"""Benchmark presets: how much work each scenario does.

Every scenario's ``run(preset)`` scales its virtual duration (or packet
count) through these helpers, so the whole suite can run as a quick CI
smoke pass or at the full durations the paper figures use.
"""

from __future__ import annotations

PRESETS = ("smoke", "full")

# Fraction of the full-scale workload each preset runs.
SCALE = {"smoke": 0.1, "full": 1.0}

# A smoke run still has to cover several flush intervals, scheduler
# periods and clock-sync rounds to produce meaningful shapes.
MIN_DURATION_NS = 20_000_000


def check_preset(preset: str) -> str:
    if preset not in PRESETS:
        raise ValueError(f"unknown preset {preset!r}; expected one of {PRESETS}")
    return preset


def scale_duration(preset: str, full_ns: int, floor_ns: int = MIN_DURATION_NS) -> int:
    """Virtual duration for ``preset`` given the full-scale duration."""
    check_preset(preset)
    return max(int(full_ns * SCALE[preset]), min(floor_ns, full_ns))


def scale_count(preset: str, full_count: int, floor: int = 1) -> int:
    """Iteration/packet count for ``preset`` given the full-scale count."""
    check_preset(preset)
    return max(int(full_count * SCALE[preset]), min(floor, full_count))
