"""Overhead experiments (§IV-B, Fig. 7).

Fig. 7(a): Sockperf UDP between two KVM VMs on two hosts, with and
without vNetTracer running four tracing scripts (OVS bridge + guest NIC
on both servers).  Expected shape: <1 % average-latency increase, no
tail blowup, no added loss.

Fig. 7(b): Netperf TCP into a 1-vCPU Xen VM, comparing no tracing,
vNetTracer, and SystemTap (STP_NO_OVERLOAD) attached at the same
``tcp_recvmsg`` probe point, on 1 G and 10 G links.  Expected shape:
vNetTracer ~0 loss; SystemTap ~10 % at 1 G and >25 % at 10 G.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.systemtap import SystemTapSession
from repro.core import FilterRule, TracepointSpec, TracingSpec, VNetTracer
from repro.experiments.topologies import build_netperf_xen, build_two_host_kvm
from repro.net.packet import IPPROTO_UDP
from repro.workloads.netperf import NetperfClient, NetperfServer
from repro.workloads.sockperf import SockperfClient, SockperfServer
from repro.workloads.stats import LatencySummary

WARMUP_NS = 50_000_000


@dataclass
class SockperfOverheadResult:
    baseline: LatencySummary
    traced: LatencySummary
    baseline_loss: int
    traced_loss: int
    records_collected: int
    avg_overhead_pct: float
    p999_overhead_pct: float


def _run_sockperf(seed: int, traced: bool, duration_ns: int, mps: int):
    scene = build_two_host_kvm(seed=seed)
    engine = scene.engine
    server = SockperfServer(scene.vm2.node, scene.vm2_ip)
    client = SockperfClient(
        scene.vm1.node, scene.vm1_ip, scene.vm2_ip, mps=mps, mode="under-load"
    )
    tracer = None
    if traced:
        tracer = VNetTracer(engine)
        for node in (scene.host1.node, scene.host2.node, scene.vm1.node, scene.vm2.node):
            tracer.add_agent(node)
        rule = FilterRule(dst_port=11111, protocol=IPPROTO_UDP)
        spec = TracingSpec(
            rule=rule,
            tracepoints=[
                TracepointSpec(node=scene.vm1.node.name, hook="dev:ens3", label="vm1:ens3"),
                TracepointSpec(node=scene.host1.node.name, hook="dev:ovs-br1", label="h1:ovs"),
                TracepointSpec(node=scene.host2.node.name, hook="dev:ovs-br1", label="h2:ovs"),
                TracepointSpec(node=scene.vm2.node.name, hook="dev:ens3", label="vm2:ens3"),
            ],
        )
        tracer.deploy(spec)
    client.start(duration_ns, start_delay_ns=WARMUP_NS)
    engine.run(until=duration_ns + WARMUP_NS + 50_000_000)
    records = 0
    if tracer is not None:
        # CollectReport quacks like the old int count, but the bench
        # layer serializes this value to JSON -- keep it a real int.
        records = int(tracer.collect())
    return client, records


def run_fig7a(
    seed: int = 7, duration_ns: int = 2_000_000_000, mps: int = 1000
) -> SockperfOverheadResult:
    """Fig. 7(a): sockperf latency with vs. without vNetTracer."""
    base_client, _ = _run_sockperf(seed, traced=False, duration_ns=duration_ns, mps=mps)
    traced_client, records = _run_sockperf(seed, traced=True, duration_ns=duration_ns, mps=mps)
    baseline = base_client.summary()
    traced = traced_client.summary()
    return SockperfOverheadResult(
        baseline=baseline,
        traced=traced,
        baseline_loss=base_client.loss_count,
        traced_loss=traced_client.loss_count,
        records_collected=records,
        avg_overhead_pct=100.0 * (traced.avg_ns - baseline.avg_ns) / baseline.avg_ns,
        p999_overhead_pct=100.0 * (traced.p999_ns - baseline.p999_ns) / baseline.p999_ns,
    )


@dataclass
class NetperfOverheadResult:
    link_gbps: float
    baseline_bps: float
    vnettracer_bps: float
    systemtap_bps: float
    vnettracer_loss_pct: float
    systemtap_loss_pct: float


def _run_netperf(
    seed: int, link_gbps: float, tracer_kind: Optional[str], duration_ns: int
) -> float:
    scene = build_netperf_xen(seed=seed, link_gbps=link_gbps)
    engine = scene.engine
    server = NetperfServer(scene.server_vm.node, scene.vm_ip, cpu_index=0)
    client = NetperfClient(
        scene.client_host.node,
        scene.client_ip,
        scene.vm_ip,
        mode="TCP_STREAM",
        gso_bytes=65160,
    )
    if tracer_kind == "vnettracer":
        tracer = VNetTracer(engine)
        tracer.add_agent(scene.server_vm.node)
        spec = TracingSpec(
            rule=FilterRule(),  # trace every received segment, as the paper's script does
            tracepoints=[
                TracepointSpec(
                    node=scene.server_vm.node.name,
                    hook="kretprobe:tcp_recvmsg",
                    label="vm:tcp_recvmsg",
                    id_mode="tcp-option",
                )
            ],
        )
        tracer.deploy(spec)
    elif tracer_kind == "systemtap":
        session = SystemTapSession(scene.server_vm.node, no_overload=True)
        session.add_probe("kretprobe:tcp_recvmsg")
        session.active = True  # pre-compiled: arm immediately for the run
        for hook, script in session._hooks:
            scene.server_vm.node.hooks.attach(hook, script)

    warmup = 100_000_000
    client.start(duration_ns, start_delay_ns=0)
    engine.schedule(warmup, server.reset_window)
    engine.run(until=duration_ns + 100_000_000)
    return server.goodput_bps()


def run_fig7b(
    seed: int = 11, link_gbps: float = 1.0, duration_ns: int = 1_000_000_000
) -> NetperfOverheadResult:
    """Fig. 7(b): netperf throughput under no tracing / vNetTracer /
    SystemTap."""
    baseline = _run_netperf(seed, link_gbps, None, duration_ns)
    vnt = _run_netperf(seed, link_gbps, "vnettracer", duration_ns)
    stap = _run_netperf(seed, link_gbps, "systemtap", duration_ns)
    return NetperfOverheadResult(
        link_gbps=link_gbps,
        baseline_bps=baseline,
        vnettracer_bps=vnt,
        systemtap_bps=stap,
        vnettracer_loss_pct=100.0 * (baseline - vnt) / baseline if baseline else 0.0,
        systemtap_loss_pct=100.0 * (baseline - stap) / baseline if baseline else 0.0,
    )
