"""Experiment scenarios reproducing the paper's evaluation (§IV).

Each module builds its topology from :mod:`repro.experiments.topologies`
and returns structured results; the ``benchmarks/`` tree and the
runnable ``examples/`` are thin wrappers over these runners, so every
figure regenerates from one code path.

==================  ================================================
module              paper content
==================  ================================================
overhead            Fig. 7(a) latency overhead, Fig. 7(b) throughput
                    vs. SystemTap on 1 G / 10 G
ovs_case            Case Study I: Fig. 8(b), Fig. 9(a), Fig. 9(b)
xen_case            Case Study II: Fig. 10(a/b), Fig. 11(a/b)
container_case      Case Study III: Fig. 12(b), Fig. 13(a/b)
clocksync_case      §III-B Cristian estimation accuracy (Fig. 4)
rpc_case            cross-service RPC tracing (docs/SERVICES.md)
==================  ================================================

The shared :class:`ScenarioSpec` registry is the discovery surface:
the CLI, the bench harness, and the determinism CI all resolve
scenarios from :data:`SCENARIOS` instead of importing per-module entry
points.  Specs hold *dotted references* (``"module:attr"``) so listing
scenarios stays import-cheap; the referenced callables load lazily via
:meth:`ScenarioSpec.build_fn` / :meth:`ScenarioSpec.run_fn` /
:meth:`ScenarioSpec.digest_fn`.  The historical per-module entry
points remain the implementations, so importing them directly keeps
working.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, Tuple


@dataclass(frozen=True)
class ScenarioSpec:
    """One discoverable scenario: name, builder, runner, digest.

    All three references are lazy ``"module:attr"`` strings:

    * ``build`` -- constructs the scenario's topology / config without
      running it (a scene builder, a ServiceGraph, a FleetConfig ...);
    * ``run`` -- the full runner returning the scenario's result object;
    * ``digest`` -- a zero-to-few-argument callable returning a short
      deterministic hex digest of a small run, for determinism CI.
    """

    name: str
    title: str
    build: str
    run: str
    digest: str

    @staticmethod
    def _resolve(ref: str) -> Callable:
        module_name, sep, attr = ref.partition(":")
        if not sep or not attr:
            raise ValueError(f"scenario reference {ref!r} is not 'module:attr'")
        return getattr(importlib.import_module(module_name), attr)

    def build_fn(self) -> Callable:
        return self._resolve(self.build)

    def run_fn(self) -> Callable:
        return self._resolve(self.run)

    def digest_fn(self) -> Callable:
        return self._resolve(self.digest)


SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a spec to the shared table (duplicate names are an error)."""
    if spec.name in SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} already registered")
    SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {', '.join(scenario_names())}"
        ) from None


def scenario_names() -> Tuple[str, ...]:
    return tuple(sorted(SCENARIOS))


register_scenario(
    ScenarioSpec(
        name="quickstart",
        title="Two-host KVM quickstart with the full observability stack",
        build="repro.experiments.topologies:build_two_host_kvm",
        run="repro.obs.scenario:run_quickstart_scenario",
        digest="repro.obs.scenario:quickstart_digest",
    )
)
register_scenario(
    ScenarioSpec(
        name="ovs_case",
        title="Case Study I: OVS congestion (Fig. 8b / 9a / 9b)",
        build="repro.experiments.topologies:build_ovs_case",
        run="repro.experiments.ovs_case:run_case",
        digest="repro.experiments.ovs_case:ovs_case_digest",
    )
)
register_scenario(
    ScenarioSpec(
        name="fault_case",
        title="Fault-equivalence: lossy control/shipment vs fault-free",
        build="repro.experiments.fault_case:build_pair",
        run="repro.experiments.fault_case:run_fault_case",
        digest="repro.experiments.fault_case:fault_case_digest",
    )
)
register_scenario(
    ScenarioSpec(
        name="macro_fleet",
        title="1000-node sharded fleet simulation",
        build="repro.experiments.macro_fleet:FleetConfig",
        run="repro.experiments.macro_fleet:run_macro_fleet",
        digest="repro.experiments.macro_fleet:macro_fleet_digest",
    )
)
register_scenario(
    ScenarioSpec(
        name="rpc_case",
        title="Cross-service RPC tracing over a declarative ServiceGraph",
        build="repro.experiments.rpc_case:default_service_graph",
        run="repro.experiments.rpc_case:run_rpc_case",
        digest="repro.experiments.rpc_case:rpc_case_digest",
    )
)
