"""Experiment scenarios reproducing the paper's evaluation (§IV).

Each module builds its topology from :mod:`repro.experiments.topologies`
and returns structured results; the ``benchmarks/`` tree and the
runnable ``examples/`` are thin wrappers over these runners, so every
figure regenerates from one code path.

==================  ================================================
module              paper content
==================  ================================================
overhead            Fig. 7(a) latency overhead, Fig. 7(b) throughput
                    vs. SystemTap on 1 G / 10 G
ovs_case            Case Study I: Fig. 8(b), Fig. 9(a), Fig. 9(b)
xen_case            Case Study II: Fig. 10(a/b), Fig. 11(a/b)
container_case      Case Study III: Fig. 12(b), Fig. 13(a/b)
clocksync_case      §III-B Cristian estimation accuracy (Fig. 4)
==================  ================================================
"""
