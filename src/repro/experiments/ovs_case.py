"""Case Study I: network delay in Open vSwitch (§IV-C, Figs. 8-9).

Topology (Fig. 8a): KVM VMs on one server connected by a single OVS.
The latency-sensitive flow is Sockperf from VM0 to the last VM; bulk
iPerf flows congest the data path:

========  =====================================================
case      interfering load
========  =====================================================
I         none (uncongested baseline)
II        one iPerf client on VM0 (shares Sockperf's ingress port)
II+       three iPerf clients on VM0 (same port: queue saturated,
          the gap to II stays flat)
III       iPerf on VM0 and on VM1 (second busy ingress port:
          switching-processing delay appears)
III+      iPerf on VM0, VM1, VM2 (more busy ports: that delay grows)
========  =====================================================

Fig. 9(a) decomposes Sockperf latency into sender stack / OVS /
receiver stack using vNetTracer probes at ``udp_send_skb`` (VM0), the
OVS ingress and egress ports (host), and ``skb_copy_datagram_iovec``
(server VM).  Fig. 9(b) repeats II/III with OVS ingress policing
(rate 1e5 kbps, burst 1e4 kb, the paper's settings) and alternatively
HTB shaping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core import FilterRule, TracepointSpec, TracingSpec, VNetTracer
from repro.experiments.topologies import build_ovs_case
from repro.net.costs import CostModel, DEFAULT_COSTS
from repro.net.packet import IPPROTO_UDP
from repro.workloads.iperf import IperfUDPClient, IperfUDPServer
from repro.workloads.sockperf import SockperfClient, SockperfServer
from repro.workloads.stats import LatencySummary

CASES = ("I", "II", "II+", "III", "III+")

# Which VM indices run iPerf clients, per case (server is the last VM).
_CASE_LOADS: Dict[str, List[int]] = {
    "I": [],
    "II": [0],
    "II+": [0, 0, 0],
    "III": [0, 1],
    "III+": [0, 1, 2],
}

SOCKPERF_PORT = 11111
IPERF_BASE_PORT = 5201
IPERF_RATE_PPS = 145_000
WARMUP_NS = 100_000_000

# The paper's mitigation settings (§IV-C).
PAPER_POLICING_RATE_KBPS = 100_000
PAPER_POLICING_BURST_KB = 10_000


def ovs_costs() -> CostModel:
    """Case-study cost model: the full serialized per-packet OVS path
    (flow lookup + actions + vhost egress copy) against ~170 kpps of
    offered bulk load, with a 128-packet ingress queue."""
    return DEFAULT_COSTS.with_overrides(
        ovs_switch_ns=3000,
        ovs_ingress_queue_packets=128,
    )


@dataclass
class OVSCaseResult:
    case: str
    sockperf: LatencySummary
    decomposition: Optional[Dict[str, LatencySummary]]
    iperf_goodputs_bps: List[float]
    policer_drops: int
    queue_drops: int
    # Populated when ``trace=True``: the tracer (its TraceDB holds the
    # collected records, so span timelines can be built afterwards --
    # see docs/TIMELINES.md) and the tracepoint chain in path order.
    tracer: Optional[VNetTracer] = None
    chain: Optional[List[str]] = None


def run_case(
    case: str,
    seed: int = 13,
    duration_ns: int = 1_000_000_000,
    mps: int = 1000,
    trace: bool = False,
    rate_limit: bool = False,
    htb: bool = False,
    costs: Optional[CostModel] = None,
    streaming: bool = False,
) -> OVSCaseResult:
    """Run one congestion case; optionally decompose with vNetTracer.

    ``streaming=True`` (requires ``trace=True``) additionally attaches
    the live window-aggregation layer over the case's tracepoint chain
    (docs/STREAMING.md); all windows are closed after final collection,
    so ``result.tracer.streaming`` holds the drained aggregator."""
    if case not in _CASE_LOADS:
        raise ValueError(f"unknown case {case!r}; choose from {CASES}")
    load = _CASE_LOADS[case]
    num_vms = max(3, max(load) + 2 if load else 3)
    scene = build_ovs_case(seed=seed, num_vms=num_vms, costs=costs or ovs_costs())
    engine = scene.engine
    server_index = num_vms - 1
    server_vm = scene.vms[server_index]
    server_ip = scene.vm_ips[server_index]

    sock_server = SockperfServer(server_vm.node, server_ip, port=SOCKPERF_PORT)
    sock_client = SockperfClient(
        scene.vms[0].node,
        scene.vm_ips[0],
        server_ip,
        server_port=SOCKPERF_PORT,
        mps=mps,
        mode="under-load",
        cpu_index=1,
    )

    iperf_servers: List[IperfUDPServer] = []
    iperf_clients: List[IperfUDPClient] = []
    for stream_index, vm_index in enumerate(load):
        port = IPERF_BASE_PORT + stream_index
        iperf_servers.append(
            IperfUDPServer(server_vm.node, server_ip, port=port, cpu_index=2)
        )
        iperf_clients.append(
            IperfUDPClient(
                scene.vms[vm_index].node,
                scene.vm_ips[vm_index],
                server_ip,
                server_port=port,
                local_port=30000 + stream_index,
                rate_pps=IPERF_RATE_PPS,
                cpu_index=2 + (stream_index % 2),
            )
        )

    if rate_limit:
        # Paper: policing on the client-VM ports (vnet0 and vnet1).
        for name in ("vnet0", "vnet1"):
            scene.ovs.port_of(name).set_policing(
                PAPER_POLICING_RATE_KBPS, PAPER_POLICING_BURST_KB
            )
    elif htb:
        for name in ("vnet0", "vnet1"):
            shaper = scene.ovs.port_of(name).set_htb()
            shaper.add_class(
                lambda p: p.app.startswith("iperf"), PAPER_POLICING_RATE_KBPS
            )

    tracer = None
    labels = {}
    if trace:
        tracer = VNetTracer(engine)
        tracer.add_agent(scene.vms[0].node)
        tracer.add_agent(scene.host.node)
        tracer.add_agent(server_vm.node)
        labels = {
            "send": "vm0:udp_send_skb",
            "ovs_in": "host:vnet0",
            "ovs_out": f"host:vnet{server_index}",
            "recv": "server:skb_copy",
        }
        spec = TracingSpec(
            rule=FilterRule(dst_port=SOCKPERF_PORT, protocol=IPPROTO_UDP),
            tracepoints=[
                TracepointSpec(
                    node=scene.vms[0].node.name,
                    hook="kprobe:udp_send_skb",
                    label=labels["send"],
                ),
                TracepointSpec(
                    node=scene.host.node.name, hook="dev:vnet0", label=labels["ovs_in"]
                ),
                TracepointSpec(
                    node=scene.host.node.name,
                    hook=f"dev:vnet{server_index}",
                    label=labels["ovs_out"],
                ),
                TracepointSpec(
                    node=server_vm.node.name,
                    hook="kprobe:skb_copy_datagram_iovec",
                    label=labels["recv"],
                ),
            ],
        )
        if streaming:
            tracer.attach_streaming(
                [labels["send"], labels["ovs_in"], labels["ovs_out"],
                 labels["recv"]],
            )
        tracer.deploy(spec)
    elif streaming:
        raise ValueError("streaming=True requires trace=True")

    for client in iperf_clients:
        client.start(duration_ns + WARMUP_NS, start_delay_ns=10_000_000)
    sock_client.start(duration_ns, start_delay_ns=WARMUP_NS)
    engine.run(until=WARMUP_NS + duration_ns + 200_000_000)

    decomposition = None
    chain = None
    if tracer is not None:
        tracer.collect()
        if tracer.streaming is not None:
            tracer.streaming.close_all()
        chain = [labels["send"], labels["ovs_in"], labels["ovs_out"], labels["recv"]]
        segments = tracer.decompose(chain)
        decomposition = {
            "sender_stack": segments[0].summary(),
            "ovs": segments[1].summary(),
            "receiver_stack": segments[2].summary(),
        }

    port0 = scene.ovs.port_of("vnet0")
    return OVSCaseResult(
        case=case,
        sockperf=sock_client.summary(),
        decomposition=decomposition,
        iperf_goodputs_bps=[s.goodput_bps() for s in iperf_servers],
        policer_drops=sum(
            p.policer_drops for p in scene.ovs.ports
        ),
        queue_drops=sum(p.queue_drops for p in scene.ovs.ports),
        tracer=tracer,
        chain=chain,
    )


def run_fig8b(seed: int = 13, duration_ns: int = 1_000_000_000) -> Dict[str, LatencySummary]:
    """Sockperf latency for Cases I/II/III (Fig. 8b)."""
    return {
        case: run_case(case, seed=seed, duration_ns=duration_ns).sockperf
        for case in ("I", "II", "III")
    }


def run_fig9a(seed: int = 13, duration_ns: int = 1_000_000_000):
    """Latency decomposition for Cases I, II, II+, III, III+ (Fig. 9a)."""
    results = {}
    for case in CASES:
        outcome = run_case(case, seed=seed, duration_ns=duration_ns, trace=True)
        results[case] = outcome.decomposition
    return results


def run_fig9b(seed: int = 13, duration_ns: int = 1_000_000_000):
    """Cases II/III with and without ingress policing (Fig. 9b)."""
    results = {}
    for case in ("II", "III"):
        results[case] = run_case(case, seed=seed, duration_ns=duration_ns).sockperf
        results[f"{case}+ratelimit"] = run_case(
            case, seed=seed, duration_ns=duration_ns, rate_limit=True
        ).sockperf
    return results


def ovs_case_digest(case: str = "I", seed: int = 13, duration_ns: int = 200_000_000) -> str:
    """16-hex-char digest of a small deterministic run (the
    ScenarioSpec registry's digest hook)."""
    import hashlib

    result = run_case(case, seed=seed, duration_ns=duration_ns)
    fingerprint = repr(
        (
            result.case,
            result.sockperf,
            result.iperf_goodputs_bps,
            result.policer_drops,
            result.queue_drops,
        )
    )
    return hashlib.sha256(fingerprint.encode()).hexdigest()[:16]
