"""Topology builders for the paper's evaluation setups (§IV-A).

Each builder wires hosts, VMs, switches, and neighbor/FDB state into a
ready-to-run scene and returns a small named object exposing the pieces
experiments touch (nodes, IPs, hook names).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.addressing import IPv4Address
from repro.net.bridge import BridgeDevice
from repro.net.costs import CostModel, DEFAULT_COSTS
from repro.net.nic import Link, PhysicalNIC, connect_hosts
from repro.sim import new_engine
from repro.sim.engine import Engine
from repro.sim.rng import SeededRNG
from repro.virt.container import Container
from repro.virt.machine import PhysicalHost, VirtualMachine
from repro.virt.overlay import EtcdStore, OverlayNetwork, OverlayMember
from repro.virt.ovs import OVSBridge


# ---------------------------------------------------------------------------
# Fig. 7(a): two hosts, one KVM VM each, OVS on each host, physical link.
# ---------------------------------------------------------------------------

@dataclass
class TwoHostKVMScene:
    engine: Engine
    host1: PhysicalHost
    host2: PhysicalHost
    vm1: VirtualMachine
    vm2: VirtualMachine
    vm1_ip: IPv4Address
    vm2_ip: IPv4Address
    ovs1: OVSBridge
    ovs2: OVSBridge
    link: Link
    nic1: PhysicalNIC
    nic2: PhysicalNIC
    host1_ip: IPv4Address
    host2_ip: IPv4Address


def build_two_host_kvm(
    seed: int = 7,
    link_gbps: float = 1.0,
    costs: Optional[CostModel] = None,
    clock_offset2_ns: int = 1_500_000,
    clock_drift2_ppm: float = 20.0,
) -> TwoHostKVMScene:
    """Two servers, a KVM VM on each, OVS bridging VM + NIC per host."""
    engine = new_engine()
    costs = costs or DEFAULT_COSTS
    rng = SeededRNG(seed, "two-host")
    host1 = PhysicalHost(engine, "host1", costs=costs, rng=rng.fork("h1"))
    host2 = PhysicalHost(
        engine,
        "host2",
        costs=costs,
        rng=rng.fork("h2"),
        clock_offset_ns=clock_offset2_ns,
        clock_drift_ppm=clock_drift2_ppm,
    )
    vm1 = host1.create_kvm_vm("vm1")
    vm2 = host2.create_kvm_vm("vm2")
    vm1_ip, vm2_ip = IPv4Address("192.168.1.10"), IPv4Address("192.168.1.20")
    fe1, be1 = vm1.attach_virtio_nic(vm1_ip, frontend_name="ens3")
    fe2, be2 = vm2.attach_virtio_nic(vm2_ip, frontend_name="ens3")

    nic1, nic2, link = connect_hosts(
        engine, host1.node, "eth0", host2.node, "eth0", rate_gbps=link_gbps
    )
    host1_ip, host2_ip = IPv4Address("192.168.1.1"), IPv4Address("192.168.1.2")

    # Host IPs live on the OVS LOCAL port, as in real OVS deployments;
    # host-originated traffic enters the switch through the bridge device.
    ovs1 = OVSBridge(host1.node, "ovs-br1", ip=host1_ip)
    ovs2 = OVSBridge(host2.node, "ovs-br1", ip=host2_ip)
    p_be1, p_nic1 = ovs1.add_port(be1), ovs1.add_port(nic1)
    p_be2, p_nic2 = ovs2.add_port(be2), ovs2.add_port(nic2)
    host1.node.add_route(IPv4Address("192.168.1.0"), 24, ovs1, src_ip=host1_ip)
    host2.node.add_route(IPv4Address("192.168.1.0"), 24, ovs2, src_ip=host2_ip)
    host1.node.add_neighbor(host2_ip, ovs2.mac)
    host2.node.add_neighbor(host1_ip, ovs1.mac)

    vm1.node.add_neighbor(vm2_ip, fe2.mac)
    vm2.node.add_neighbor(vm1_ip, fe1.mac)
    ovs1.fdb[fe1.mac.value] = p_be1
    ovs1.fdb[fe2.mac.value] = p_nic1
    ovs1.fdb[ovs2.mac.value] = p_nic1
    ovs2.fdb[fe2.mac.value] = p_be2
    ovs2.fdb[fe1.mac.value] = p_nic2
    ovs2.fdb[ovs1.mac.value] = p_nic2

    return TwoHostKVMScene(
        engine, host1, host2, vm1, vm2, vm1_ip, vm2_ip, ovs1, ovs2,
        link, nic1, nic2, host1_ip, host2_ip,
    )


# ---------------------------------------------------------------------------
# Fig. 7(b): physical client + Xen server VM over a 1 G / 10 G link.
# ---------------------------------------------------------------------------

@dataclass
class NetperfXenScene:
    engine: Engine
    client_host: PhysicalHost
    server_host: PhysicalHost
    server_vm: VirtualMachine
    client_ip: IPv4Address
    vm_ip: IPv4Address
    link: Link


def build_netperf_xen(
    seed: int = 11,
    link_gbps: float = 1.0,
    costs: Optional[CostModel] = None,
    ratelimit_us: int = 1000,
) -> NetperfXenScene:
    """Netperf client on bare metal -> server inside a 1-vCPU Xen VM."""
    engine = new_engine()
    costs = costs or DEFAULT_COSTS
    rng = SeededRNG(seed, "netperf-xen")
    client_host = PhysicalHost(engine, "client", costs=costs, rng=rng.fork("c"))
    server_host = PhysicalHost(engine, "server", costs=costs, rng=rng.fork("s"))
    server_vm = server_host.create_xen_vm(
        "vm1", pcpu_index=0, num_vcpus=1, ratelimit_us=ratelimit_us
    )

    client_ip = IPv4Address("192.168.2.1")
    vm_ip = IPv4Address("192.168.2.20")
    dom0_ip = IPv4Address("192.168.2.2")

    nic_c, nic_s, link = connect_hosts(
        engine, client_host.node, "eth0", server_host.node, "eth0",
        rate_gbps=link_gbps,
    )
    nic_c.ip = client_ip
    client_host.node.add_route(IPv4Address("192.168.2.0"), 24, nic_c, src_ip=client_ip)

    fe, be = server_vm.attach_vif_nic(vm_ip, frontend_name="eth1", backend_name="vif1.0")
    xenbr0 = BridgeDevice(server_host.node, "xenbr0", ip=dom0_ip)
    xenbr0.add_port(nic_s)
    xenbr0.add_port(be)
    xenbr0.fdb[fe.mac.value] = be
    xenbr0.fdb[nic_c.mac.value] = nic_s

    client_host.node.add_neighbor(vm_ip, fe.mac)
    server_vm.node.add_neighbor(client_ip, nic_c.mac)

    return NetperfXenScene(
        engine, client_host, server_host, server_vm, client_ip, vm_ip, link
    )


# ---------------------------------------------------------------------------
# Case Study I: three KVM VMs on one host through a single OVS (Fig. 8a).
# ---------------------------------------------------------------------------

@dataclass
class OVSCaseScene:
    engine: Engine
    host: PhysicalHost
    vms: List[VirtualMachine]
    vm_ips: List[IPv4Address]
    ovs: OVSBridge
    ports: Dict[str, object] = field(default_factory=dict)  # vnetN -> OVSPort


def build_ovs_case(
    seed: int = 13,
    num_vms: int = 3,
    costs: Optional[CostModel] = None,
) -> OVSCaseScene:
    engine = new_engine()
    costs = costs or DEFAULT_COSTS
    rng = SeededRNG(seed, "ovs-case")
    host = PhysicalHost(engine, "host1", costs=costs, rng=rng.fork("h"))
    ovs = OVSBridge(host.node, "ovs-br1")
    vms, ips, frontends = [], [], []
    scene_ports: Dict[str, object] = {}
    for index in range(num_vms):
        vm = host.create_kvm_vm(f"vm{index}")
        ip = IPv4Address(f"10.0.0.{index + 1}")
        fe, be = vm.attach_virtio_nic(ip, frontend_name="em", backend_name=f"vnet{index}")
        port = ovs.add_port(be)
        scene_ports[be.name] = port
        vms.append(vm)
        ips.append(ip)
        frontends.append(fe)
        ovs.fdb[fe.mac.value] = port
    for i, vm in enumerate(vms):
        for j, ip in enumerate(ips):
            if i != j:
                vm.node.add_neighbor(ip, frontends[j].mac)
    return OVSCaseScene(engine, host, vms, ips, ovs, scene_ports)


# ---------------------------------------------------------------------------
# Case Study II: Xen server (I/O VM + CPU-hog VM on one pCPU), remote client,
# the application inside a container on the I/O VM (Fig. 10/11).
# ---------------------------------------------------------------------------

@dataclass
class XenCaseScene:
    engine: Engine
    client_host: PhysicalHost
    server_host: PhysicalHost
    io_vm: VirtualMachine
    hog_vm: Optional[VirtualMachine]
    container: Container
    client_ip: IPv4Address
    vm_ip: IPv4Address
    container_ip: IPv4Address
    veth_name: str


def build_xen_case(
    seed: int = 17,
    with_cpu_hog: bool = True,
    ratelimit_us: int = 1000,
    costs: Optional[CostModel] = None,
    link_gbps: float = 1.0,
) -> XenCaseScene:
    engine = new_engine()
    costs = costs or DEFAULT_COSTS
    rng = SeededRNG(seed, "xen-case")
    client_host = PhysicalHost(engine, "client", costs=costs, rng=rng.fork("c"))
    server_host = PhysicalHost(
        engine, "xenhost", costs=costs, rng=rng.fork("s"),
        clock_offset_ns=3_700_000, clock_drift_ppm=12.0,
    )
    io_vm = server_host.create_xen_vm(
        "vm1", pcpu_index=0, num_vcpus=1, ratelimit_us=ratelimit_us
    )
    hog_vm = None
    if with_cpu_hog:
        hog_vm = server_host.create_xen_vm(
            "vm2", pcpu_index=0, num_vcpus=1, cpu_hog=True, ratelimit_us=ratelimit_us
        )

    client_ip = IPv4Address("192.168.2.1")
    vm_ip = IPv4Address("192.168.2.20")
    container_ip = IPv4Address("172.17.0.2")
    dom0_ip = IPv4Address("192.168.2.2")

    nic_c, nic_s, link = connect_hosts(
        engine, client_host.node, "eth0", server_host.node, "eth0",
        rate_gbps=link_gbps, propagation_ns=5_000,  # same-rack, one ToR hop
    )
    nic_c.ip = client_ip
    client_host.node.add_route(IPv4Address("172.17.0.0"), 16, nic_c, src_ip=client_ip)
    client_host.node.add_route(IPv4Address("192.168.2.0"), 24, nic_c, src_ip=client_ip)

    fe, be = io_vm.attach_vif_nic(vm_ip, frontend_name="eth1", backend_name="vif1.0")
    xenbr0 = BridgeDevice(server_host.node, "xenbr0", ip=dom0_ip)
    xenbr0.add_port(nic_s)
    xenbr0.add_port(be)
    xenbr0.fdb[fe.mac.value] = be
    xenbr0.fdb[nic_c.mac.value] = nic_s
    # Dom0's own L3 presence (management / clock-sync traffic).
    server_host.node.add_route(IPv4Address("192.168.2.0"), 24, xenbr0, src_ip=dom0_ip)
    server_host.node.add_neighbor(client_ip, nic_c.mac)
    client_host.node.add_neighbor(dom0_ip, xenbr0.mac)

    # The application runs inside a container on the I/O VM (the paper:
    # "All the applications were running within containers on the VMs").
    guest = io_vm.node
    guest.ip_forward = True
    docker0 = BridgeDevice(guest, "docker0", ip=IPv4Address("172.17.0.1"))
    container = Container(guest, "app", container_ip, docker0, host_veth_name="veth684a1d9")
    # Host-side pinpoint route to the container, then the container's
    # replies to the client leave via eth1 directly.
    guest.add_route(container_ip, 32, docker0)
    guest.add_neighbor(client_ip, nic_c.mac)

    # L2 plumbing: the client addresses the container IP; frames are
    # carried to the VM's eth1 MAC and forwarded by the guest kernel.
    client_host.node.add_neighbor(container_ip, fe.mac)
    client_host.node.add_neighbor(vm_ip, fe.mac)

    return XenCaseScene(
        engine, client_host, server_host, io_vm, hog_vm, container,
        client_ip, vm_ip, container_ip, container.host_veth_name,
    )


# ---------------------------------------------------------------------------
# Case Study III: two KVM VMs on one host, Docker overlay between them
# (Fig. 12a).
# ---------------------------------------------------------------------------

@dataclass
class OverlayCaseScene:
    engine: Engine
    host: PhysicalHost
    vm1: VirtualMachine
    vm2: VirtualMachine
    vm1_ip: IPv4Address
    vm2_ip: IPv4Address
    overlay: OverlayNetwork
    member1: OverlayMember
    member2: OverlayMember
    container1: Container
    container2: Container
    c1_ip: IPv4Address
    c2_ip: IPv4Address
    etcd: EtcdStore


def build_overlay_case(
    seed: int = 23,
    costs: Optional[CostModel] = None,
    vm_gso_bytes: int = 65160,
) -> OverlayCaseScene:
    """Two VMs on one host (linux bridge between their backends), a
    Docker overlay (VXLAN, etcd) connecting one container on each."""
    engine = new_engine()
    costs = costs or DEFAULT_COSTS
    rng = SeededRNG(seed, "overlay-case")
    host = PhysicalHost(engine, "host1", costs=costs, rng=rng.fork("h"))
    vm1 = host.create_kvm_vm("vm1")
    vm2 = host.create_kvm_vm("vm2")
    vm1_ip, vm2_ip = IPv4Address("192.168.3.11"), IPv4Address("192.168.3.12")
    fe1, be1 = vm1.attach_virtio_nic(vm1_ip, frontend_name="eth0")
    fe2, be2 = vm2.attach_virtio_nic(vm2_ip, frontend_name="eth0")
    hostbr = BridgeDevice(host.node, "virbr0")
    hostbr.add_port(be1)
    hostbr.add_port(be2)
    hostbr.fdb[fe1.mac.value] = be1
    hostbr.fdb[fe2.mac.value] = be2
    vm1.node.add_neighbor(vm2_ip, fe2.mac)
    vm2.node.add_neighbor(vm1_ip, fe1.mac)

    etcd = EtcdStore()
    overlay = OverlayNetwork("ovnet", vni=42, subnet=IPv4Address("10.32.0.0"), etcd=etcd)
    member1 = overlay.join(vm1.node, vm1_ip)
    member2 = overlay.join(vm2.node, vm2_ip)
    c1_ip, c2_ip = IPv4Address("10.32.0.2"), IPv4Address("10.32.0.3")
    container1 = overlay.create_container(member1, "c1", c1_ip)
    container2 = overlay.create_container(member2, "c2", c2_ip)

    return OverlayCaseScene(
        engine, host, vm1, vm2, vm1_ip, vm2_ip, overlay, member1, member2,
        container1, container2, c1_ip, c2_ip, etcd,
    )
