"""The microservice RPC scenario (docs/SERVICES.md).

A four-tier service graph -- client, load balancer, backend, cache --
compiled from the declarative :class:`~repro.services.ServiceGraph`
builder onto per-edge rate-limited links, traced end to end with one
UDP dst-port filter.  Every RPC packet carries its parent's trace ID
in the wire embed, so the run reconstructs into a cross-service span
*forest*: one tree per root request, child RPC spans nested under the
request that caused them.

Congestion varies over the run: midway through the request load a
background TCP bulk transfer (AIMD / slow-start dynamics from
``net/tcp.py``) saturates the client -> lb0 edge, so later requests
routed through lb0 see queueing the early ones did not.

The run is deterministic -- same seed, same doc, byte-identical at any
shard count -- which is what the ``repro rpc --deterministic`` CI
double-run and the 1-vs-4-shard differential test pin down.
"""

from __future__ import annotations

import hashlib
from typing import List, NamedTuple, Optional

from repro.core import FilterRule, TracepointSpec, TracingSpec, VNetTracer
from repro.core.session import TracerSession
from repro.net.packet import IPPROTO_UDP
from repro.net.stack import HOOK_SKB_COPY_DATAGRAM, HOOK_UDP_SEND_SKB
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import StatsSampler
from repro.services import RPC_PORT, ServiceDeployment, ServiceGraph
from repro.sim import ShardedEngine, engine_factory, new_engine
from repro.sim.engine import Engine
from repro.streaming import canonical_json
from repro.tracing.export import chrome_trace_json
from repro.tracing.spans import SpanForest

# Clock sync (30 Cristian samples) settles well inside this window;
# the request load starts after it.
SYNC_BUDGET_NS = 40_000_000
# Trailing settle so the last fan-ins, responses, and the background
# TCP flow all complete before collection.
SETTLE_NS = 100_000_000

# The streaming layer watches the client -> lb0 front edge.
RPC_CHAIN = ["client0:send", "lb0:recv"]

# Background congestion: one TCP bulk transfer over the client -> lb0
# edge, starting a third of the way into the request load.
BULK_PORT = 5001
DEFAULT_BULK_BYTES = 300_000


def default_service_graph() -> ServiceGraph:
    """The scenario topology: client -> lb -> backend -> cache."""
    return (
        ServiceGraph()
        .tier("client", replicas=1, work_ns=5_000)
        .calls("lb", fanout=1, payload_bytes=96)
        .tier("lb", replicas=2, work_ns=10_000)
        .calls("backend", fanout=2, payload_bytes=64)
        .tier("backend", replicas=2, work_ns=25_000)
        .calls("cache", fanout=1, payload_bytes=48)
        .tier("cache", replicas=2, work_ns=8_000)
    )


class RpcCaseResult(NamedTuple):
    """Everything the CLI / tests need after the run."""

    engine: Engine
    session: TracerSession
    tracer: VNetTracer
    registry: MetricsRegistry
    sampler: StatsSampler
    deployment: ServiceDeployment
    forest: SpanForest
    streaming: object
    chrome_json: str


def _tracepoints(deployment: ServiceDeployment) -> List[TracepointSpec]:
    points: List[TracepointSpec] = []
    for node in deployment.nodes:
        points.append(
            TracepointSpec(node=node.name, hook=HOOK_UDP_SEND_SKB, label=f"{node.name}:send")
        )
        points.append(
            TracepointSpec(
                node=node.name, hook=HOOK_SKB_COPY_DATAGRAM, label=f"{node.name}:recv"
            )
        )
    return points


def run_rpc_case(
    seed: int = 21,
    requests: int = 40,
    interval_ns: int = 1_000_000,
    shards: int = 1,
    graph: Optional[ServiceGraph] = None,
    bulk_bytes: int = DEFAULT_BULK_BYTES,
    sample_interval_ns: int = 50_000_000,
    window_ns: int = 50_000_000,
) -> RpcCaseResult:
    """Run the RPC scenario and return its artifacts.

    ``shards`` >= 1 runs on a compat-tier
    :class:`~repro.sim.ShardedEngine` (results are byte-identical at
    any shard count; the differential test pins 1 vs 4); ``shards=0``
    keeps the plain single-heap engine.
    """
    if shards:
        with engine_factory(lambda: ShardedEngine(shards=shards)):
            engine = new_engine()
    else:
        engine = new_engine()

    session = TracerSession(engine)
    tracer = session.tracer
    if isinstance(engine, ShardedEngine):
        engine.attach_metrics(tracer.obs)

    session.with_service_graph(graph or default_service_graph(), seed=seed)
    deployment = session.service_deployment
    session.with_stats_sampler(interval_ns=sample_interval_ns)
    session.with_streaming(RPC_CHAIN, window_ns=window_ns, emit_interval_ns=window_ns)
    sampler = tracer.sampler
    streaming = tracer.streaming

    front = deployment.edge("client0", "lb0")
    client_node = deployment.service("client").node
    lb_node = deployment.service("lb").node
    session.with_clock_sync(
        client_node, front.caller_ip, f"dev:{front.caller_device}",
        lb_node, front.callee_ip, f"dev:{front.callee_device}",
        samples=30,
    )

    spec = TracingSpec(
        rule=FilterRule(dst_port=RPC_PORT, protocol=IPPROTO_UDP),
        tracepoints=_tracepoints(deployment),
    )

    # The background bulk flow server listens on lb0's front-edge IP.
    lb_node.tcp.listen(front.callee_ip, BULK_PORT)

    def start_bulk() -> None:
        conn = client_node.tcp.connect(front.caller_ip, front.callee_ip, BULK_PORT)
        previous = conn.on_established
        conn.on_established = lambda c: (
            previous(c) if previous else None,
            c.send_app_bytes(bulk_bytes),
        )

    def after_sync(estimate) -> None:
        session.deploy(spec)
        start_ns = engine.now + 2_000_000
        deployment.start_load(requests, interval_ns, start_ns=start_ns)
        if bulk_bytes > 0:
            engine.schedule(
                start_ns + (requests * interval_ns) // 3, start_bulk
            )

    sync = session.syncs[lb_node.name]
    previous = sync.on_done
    sync.on_done = lambda est: (previous(est), after_sync(est))

    engine.run(until=SYNC_BUDGET_NS + requests * interval_ns + SETTLE_NS)
    session.collect()
    streaming.close_all()
    forest = tracer.rpc_forest(deployment.links)
    chrome = chrome_trace_json(forest)
    sampler.sample_now()
    return RpcCaseResult(
        engine, session, tracer, tracer.obs, sampler, deployment, forest,
        streaming, chrome,
    )


# -- deterministic digest (CLI + CI double-run + bench) -----------------------


def deterministic_doc(result: RpcCaseResult) -> dict:
    """The canonical run summary: everything observable, sorted."""
    registry = result.registry
    rpc_metrics = {
        name: registry.get(name).total()
        for name in registry.names()
        if name.startswith("vnt_rpc_")
    }
    return {
        "scenario": "rpc_case",
        "completed_requests": result.deployment.completed_requests,
        "latencies_ns": list(result.deployment.client_latencies),
        "links": {
            f"0x{child:08x}": [f"0x{parent:08x}" for parent in parents]
            for child, parents in sorted(result.deployment.links.items())
        },
        "trees": len(result.forest.trees),
        "spans": result.forest.span_count(),
        "metrics": rpc_metrics,
        "chrome_sha256": hashlib.sha256(result.chrome_json.encode()).hexdigest(),
        "streaming_sha256": hashlib.sha256(
            result.streaming.summary_json().encode()
        ).hexdigest(),
    }


def rpc_case_digest(seed: int = 21, requests: int = 12, shards: int = 1) -> str:
    """16-hex-char digest of a small deterministic run (the
    ScenarioSpec registry's digest hook)."""
    result = run_rpc_case(seed=seed, requests=requests, shards=shards)
    doc = deterministic_doc(result)
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()[:16]
