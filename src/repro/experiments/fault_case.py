"""The fault-equivalence experiment (docs/FAULTS.md).

One scenario, three legs:

* **fault-free** -- a two-node veth flow traced online, no fault plan;
* **faulty + retries** -- the same run with a lossy control plane *and*
  lossy shipment; the resilient delivery layer (ack/retry deploys,
  at-least-once sequence-numbered shipment with collector-side
  resequencing + dedup) must absorb every fault, so the end-to-end
  results are *identical* to the fault-free leg: same TraceDB row
  count, byte-identical latency decomposition, byte-identical span
  timeline export;
* **faulty, retries disabled** -- the same shipment faults with a
  one-attempt budget; records are genuinely lost, and the point is the
  accounting: ``rows_lost == vnt_fault_records_lost_total`` to within
  zero.

The traffic starts only after the (possibly retried) deploy has
settled, so control-plane faults cannot change which packets are
observed -- they only shift *when* scripts attach inside the settle
window.  Timeline comparison canonicalizes trace-ID order (sorted) and
excludes the control-plane track, whose timings legitimately differ
under faults; everything data-plane must match exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import FilterRule, GlobalConfig, TracepointSpec, TracingSpec
from repro.core.metrics import SegmentLatency
from repro.core.reports import CollectReport, DeployReport
from repro.core.session import TracerSession
from repro.faults.plan import ChannelFaults, FaultPlan
from repro.net.addressing import IPv4Address
from repro.net.packet import IPPROTO_UDP
from repro.net.stack import KernelNode
from repro.sim import new_engine
from repro.sim.engine import Engine
from repro.tracing.export import chrome_trace_json

# The deploy (with retries) settles well inside this window; traffic
# starts after it so every leg observes the same packets.
TRAFFIC_START_NS = 60_000_000
PACKET_INTERVAL_NS = 250_000
# Trailing settle so in-flight shipments (and their retries) land.
SETTLE_NS = 300_000_000


@dataclass
class FaultCaseResult:
    """Everything one leg produced (plus its fault accounting)."""

    plan: Optional[FaultPlan]
    retries_enabled: bool
    packets_sent: int
    rows: int
    rows_by_label: Dict[str, int]
    decomposition: List[SegmentLatency]
    timeline_json: str
    deploy_report: DeployReport
    collect_report: CollectReport
    records_lost: int
    records_lost_by_reason: Dict[str, int]
    deploy_retries: int
    ship_retries: int
    deduped_batches: int
    metrics: Dict[str, float] = field(default_factory=dict)
    # Streaming query layer (docs/STREAMING.md): the canonical run-level
    # summary (windows closed over the send->recv hop) and the number of
    # skip_shipment gap notices the aggregator saw.
    streaming_summary: str = ""
    streaming_gaps: int = 0
    # The leg's populated TraceDB, kept so the streaming differential
    # suite can compute the offline reference answer from it.
    db: Optional[object] = None


def default_fault_plan(seed: int = 7) -> FaultPlan:
    """The headline lossy-control + lossy-shipment plan."""
    return FaultPlan(
        seed=seed,
        control=ChannelFaults(loss_prob=0.4, dup_prob=0.15, delay_ns_max=300_000),
        shipment=ChannelFaults(loss_prob=0.25, dup_prob=0.15, delay_ns_max=500_000),
    )


def _build_pair(engine: Engine) -> Tuple[KernelNode, KernelNode, IPv4Address, IPv4Address]:
    """Two kernel nodes joined by a veth pair (the test-suite topology)."""
    from repro.net.device import VethDevice

    node_a = KernelNode(engine, "alpha", num_cpus=2)
    node_b = KernelNode(engine, "beta", num_cpus=2)
    veth_a, veth_b = VethDevice.create_pair(node_a, "veth0", node_b, "veth0")
    ip_a, ip_b = IPv4Address("10.1.0.1"), IPv4Address("10.1.0.2")
    veth_a.ip, veth_b.ip = ip_a, ip_b
    node_a.add_route(IPv4Address("10.1.0.0"), 24, veth_a, src_ip=ip_a)
    node_b.add_route(IPv4Address("10.1.0.0"), 24, veth_b, src_ip=ip_b)
    node_a.add_neighbor(ip_b, veth_b.mac)
    node_b.add_neighbor(ip_a, veth_a.mac)
    return node_a, node_b, ip_a, ip_b


def _counter_total(registry, name: str) -> float:
    if name not in registry:
        return 0.0
    return sum(value for _, value in registry.get(name).samples())


def _counter_by_last_label(registry, name: str) -> Dict[str, float]:
    """Totals keyed by a metric's last label value (e.g. the loss
    reason of ``vnt_fault_records_lost_total{node, reason}``)."""
    totals: Dict[str, float] = {}
    if name not in registry:
        return totals
    for labels, value in registry.get(name).samples():
        key = labels[-1] if labels else ""
        totals[key] = totals.get(key, 0.0) + value
    return totals


def run_fault_case(
    seed: int = 7,
    plan: Optional[FaultPlan] = None,
    packets: int = 200,
    retries: bool = True,
) -> FaultCaseResult:
    """Run one leg: the two-node online-collection flow under ``plan``."""
    engine = new_engine()
    node_a, node_b, ip_a, ip_b = _build_pair(engine)

    session = (
        TracerSession(engine)
        .with_agent(node_a)
        .with_agent(node_b)
        .with_fault_plan(plan)
        # Streaming windows over the same hop the offline decomposition
        # covers; under faults the closed frames must stay byte-identical
        # to the fault-free leg (the dedup/resequencing pipeline runs
        # upstream of the tap).
        .with_streaming(["send", "recv"], window_ns=10_000_000)
    )
    tracer = session.tracer

    attempt_budget = 8 if retries else 1
    spec = TracingSpec(
        rule=FilterRule(dst_port=9000, protocol=IPPROTO_UDP),
        tracepoints=[
            TracepointSpec(node=node_a.name, hook="kprobe:udp_send_skb",
                           label="send"),
            TracepointSpec(node=node_b.name, hook="kprobe:skb_copy_datagram_iovec",
                           label="recv"),
        ],
        global_config=GlobalConfig(
            online_collection=True,
            flush_interval_ns=5_000_000,
            deploy_max_attempts=attempt_budget,
            ship_max_attempts=attempt_budget,
        ),
    )
    deploy_report = session.deploy(spec)

    node_b.bind_udp(ip_b, 9000)
    client = node_a.bind_udp(ip_a, 9001)
    for i in range(packets):
        engine.schedule(
            TRAFFIC_START_NS + i * PACKET_INTERVAL_NS,
            client.sendto, ip_b, 9000, b"x" * 32, "fault-case", i,
        )

    traffic_end = TRAFFIC_START_NS + packets * PACKET_INTERVAL_NS
    engine.run(until=traffic_end + 20_000_000)
    # Drain what is still buffered so trailing records ship online too.
    for agent in tracer.agents.values():
        if not agent.crashed and agent.ring is not None:
            agent.ring.flush()
    engine.run(until=traffic_end + SETTLE_NS)
    collect_report = session.collect()
    streaming = tracer.streaming
    streaming.close_all()

    chain = ["send", "recv"]
    decomposition = session.decompose(chain)
    forest = tracer.span_forest(
        chain,
        trace_ids=sorted(tracer.db.trace_ids()),
        include_control=False,
    )
    registry = tracer.obs
    lost_by_reason = _counter_by_last_label(
        registry, "vnt_fault_records_lost_total")
    return FaultCaseResult(
        plan=plan,
        retries_enabled=retries,
        packets_sent=packets,
        rows=tracer.db.rows_inserted,
        rows_by_label={
            label: tracer.db.count(label) for label in sorted(tracer.db.tables())
        },
        decomposition=decomposition,
        timeline_json=chrome_trace_json(forest),
        deploy_report=deploy_report,
        collect_report=collect_report,
        records_lost=int(sum(lost_by_reason.values())),
        records_lost_by_reason={k: int(v) for k, v in lost_by_reason.items()},
        deploy_retries=int(
            _counter_total(registry, "vnt_retry_deploy_retries_total")),
        ship_retries=int(_counter_total(registry, "vnt_retry_ship_retries_total")),
        deduped_batches=tracer.db.deduped_batches,
        metrics={
            "control_injected": _counter_total(
                registry, "vnt_fault_control_injected_total"),
            "shipment_injected": _counter_total(
                registry, "vnt_fault_shipment_injected_total"),
        },
        streaming_summary=streaming.summary_json(),
        streaming_gaps=streaming.gap_notices,
        db=tracer.db,
    )


@dataclass
class FaultEquivalenceResult:
    """The three legs plus the invariant checks, pre-computed."""

    baseline: FaultCaseResult
    faulty: FaultCaseResult
    lossy_no_retries: FaultCaseResult
    rows_match: bool
    decomposition_match: bool
    timeline_match: bool
    loss_accounted: bool
    streaming_match: bool = False

    @property
    def equivalent(self) -> bool:
        return (
            self.rows_match
            and self.decomposition_match
            and self.timeline_match
            and self.streaming_match
        )


def run_fault_equivalence(
    seed: int = 7, packets: int = 200
) -> FaultEquivalenceResult:
    """All three legs + the paper-level invariant (docs/FAULTS.md):
    with retries, faults change *nothing* end-to-end; without them,
    every missing row is accounted for exactly."""
    baseline = run_fault_case(seed=seed, plan=None, packets=packets)
    faulty = run_fault_case(
        seed=seed, plan=default_fault_plan(seed), packets=packets)
    # The no-retries leg injects shipment loss only: control loss with a
    # one-attempt budget could leave a script never installed, which is
    # a different (coarser) failure than the per-record accounting this
    # leg demonstrates.
    lossy_plan = FaultPlan(
        seed=seed, shipment=ChannelFaults(loss_prob=0.3))
    lossy = run_fault_case(
        seed=seed, plan=lossy_plan, packets=packets, retries=False)

    return FaultEquivalenceResult(
        baseline=baseline,
        faulty=faulty,
        lossy_no_retries=lossy,
        rows_match=faulty.rows == baseline.rows,
        decomposition_match=faulty.decomposition == baseline.decomposition,
        timeline_match=faulty.timeline_json == baseline.timeline_json,
        loss_accounted=(
            baseline.rows - lossy.rows == lossy.records_lost
        ),
        streaming_match=(
            faulty.streaming_summary == baseline.streaming_summary
        ),
    )


# Public builder alias for the ScenarioSpec registry (the historical
# underscore name stays, as tests and this module use it directly).
build_pair = _build_pair


def fault_case_digest(seed: int = 7, packets: int = 60) -> str:
    """16-hex-char digest of a small deterministic run (the
    ScenarioSpec registry's digest hook): the faulty-with-retries leg,
    whose end-to-end results must also equal the fault-free leg's."""
    import hashlib

    result = run_fault_case(seed=seed, plan=default_fault_plan(seed), packets=packets)
    fingerprint = repr(
        (
            result.rows,
            result.rows_by_label,
            result.timeline_json,
            result.streaming_summary,
            result.records_lost,
        )
    )
    return hashlib.sha256(fingerprint.encode()).hexdigest()[:16]
