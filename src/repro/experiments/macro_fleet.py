"""1000-node fleet scenario for the sharded simulation substrate.

This is the workload behind the ``macro_fleet`` benchmarks: ``nodes``
hosts in ``racks`` racks exchange cross-rack probe/reply pairs every
tick, rack leaders run one exact Cristian clock-sync round against the
rack-0 master, and a fraction of probes record tracepoint hits that are
merged into one :class:`~repro.core.tracedb.TraceDB` through the
packed-blob path.  The same world runs in three modes:

* ``shards=1`` -- one plain :class:`~repro.sim.engine.Engine` hosting
  every rack, with an :class:`~repro.sim.coordinator.InlineOutbox`
  carrying cross-rack traffic (the status-quo baseline leg);
* ``shards=N`` -- a :class:`~repro.sim.coordinator.ShardCoordinator`
  over N independent shard programs (contiguous rack blocks) coupled
  only by boundary messages;
* ``shards=N, workers=True`` -- the same coordinator hosting each shard
  on a ``multiprocessing`` worker with pickled boundary batches.

All modes produce the **same fingerprint** by construction: every event
class lands on its own residue modulo 1000 virtual nanoseconds (ticks
on 0, polls on 3·j, probe arrivals on 7, reply arrivals on 14, sync on
500/507/514) and the per-tick probe pattern is a permutation of the
nodes, so no destination ever sees two deliveries at one timestamp and
results never depend on engine interleaving.  The differential tests in
``tests/test_macro_fleet.py`` assert that equality; docs/SHARDING.md
explains why it holds.
"""

from __future__ import annotations

import functools
import hashlib
import struct
from typing import Any, Dict, List, NamedTuple, Optional

from repro.core.records import RECORD_STRUCT
from repro.core.tracedb import TraceDB
from repro.streaming import StreamingAggregator, StreamingConfig, canonical_json
from repro.sim.coordinator import (
    BoundaryMessage,
    BoundaryOutbox,
    CoordinatorRun,
    InlineOutbox,
    ShardCoordinator,
    ShardEngine,
)
from repro.sim.engine import Engine, SimulationError

# Boundary message kinds.
PROBE = 1
REPLY = 2
SYNC_REQ = 3
SYNC_RESP = 4

# Stable tracepoint ids for the packed-blob merge: passed explicitly to
# ``TraceDB.insert_packed`` so fleet fingerprints never depend on the
# process-global tracepoint allocator.
TP_PROBE_TX = 1
TP_PROBE_RX = 2
TP_REPLY_RX = 3
FLEET_LABELS = {
    TP_PROBE_TX: "fleet.probe.tx",
    TP_PROBE_RX: "fleet.probe.rx",
    TP_REPLY_RX: "fleet.reply.rx",
}
# Probe path order, for the streaming window aggregation over the merge.
FLEET_CHAIN = (
    FLEET_LABELS[TP_PROBE_TX],
    FLEET_LABELS[TP_PROBE_RX],
    FLEET_LABELS[TP_REPLY_RX],
)

# Rack leaders stagger their sync rounds by this much so the master
# never sees two requests at one timestamp (keeps residue 500 mod 1000).
SYNC_STAGGER_NS = 100_000

_RECORD = RECORD_STRUCT  # struct.Struct("<IIQII"): the packed-blob layout


class FleetConfig(NamedTuple):
    """Fleet shape and timing.  The defaults are the 1000-node scenario
    the benchmarks run; timings are chosen tie-free (module docstring).
    """

    nodes: int = 1000
    racks: int = 40
    ticks: int = 20
    tick_ns: int = 1_000_000  # residue 0 (mod 1000)
    local_ns: int = 61_003  # polls at residues 3, 6, 9, ...
    wire_ns: int = 1_000_007  # cross-rack latency; arrivals at 7 / 14
    lookahead_ns: int = 1_000_000  # <= wire_ns, the conservative window
    polls_per_tick: int = 10  # node-local agent polls per tick
    probe_every: int = 4  # each node probes every Nth tick (staggered)
    record_every: int = 2  # record tracepoints every Nth probing tick
    seed: int = 42  # rack clock-skew seed
    # Fault injection for the worker-crash tests: raise inside this
    # shard at this virtual time.
    crash_in_shard: Optional[int] = None
    crash_at_ns: Optional[int] = None

    @property
    def per_rack(self) -> int:
        return self.nodes // self.racks

    @property
    def end_ns(self) -> int:
        """Virtual horizon: last tick plus room for replies in flight."""
        return (self.ticks + 3) * self.tick_ns


def fleet_rack_skews(config: FleetConfig) -> List[int]:
    """Deterministic per-rack clock skew; rack 0 is the sync master and
    defines zero.  A small multiplicative hash keeps skews reproducible
    without touching any RNG state shared with other scenarios."""
    skews = [0]
    for rack in range(1, config.racks):
        mixed = (config.seed * 1_000_003 + rack * 7919) % 60_000
        skews.append(mixed - 30_000)
    return skews


def shard_of_rack(rack: int, racks: int, num_shards: int) -> int:
    """Contiguous balanced rack->shard placement."""
    return rack * num_shards // racks


def _probe_peer(node: int, tick: int, config: FleetConfig) -> int:
    """Per-tick probe destination: same slot, rack shifted by a
    tick-dependent constant -- a permutation of the nodes, so every node
    receives exactly one probe per tick."""
    per_rack = config.per_rack
    rack, slot = divmod(node, per_rack)
    dst_rack = (rack + 1 + tick % (config.racks - 1)) % config.racks
    return dst_rack * per_rack + slot


def _packet_len(trace_id: int) -> int:
    return 64 + trace_id % 1400


class _FleetWorld:
    """One shard program: the racks this shard hosts, their workload,
    and their tracepoint record buffers.  With ``num_shards == 1`` it is
    the whole fleet on a single engine."""

    def __init__(
        self,
        config: FleetConfig,
        shard_index: int,
        num_shards: int,
        outbox: BoundaryOutbox,
        engine,
    ) -> None:
        if config.nodes % config.racks:
            raise SimulationError(
                f"nodes ({config.nodes}) must divide evenly into "
                f"racks ({config.racks})"
            )
        if config.racks < num_shards:
            raise SimulationError(
                f"more shards ({num_shards}) than racks ({config.racks})"
            )
        if config.wire_ns < config.lookahead_ns:
            raise SimulationError(
                f"wire latency {config.wire_ns}ns below the lookahead "
                f"window {config.lookahead_ns}ns"
            )
        self.config = config
        self.shard = shard_index
        self.num_shards = num_shards
        self.outbox = outbox
        self.engine = engine
        self.rack_skews = fleet_rack_skews(config)
        self.racks = [
            rack
            for rack in range(config.racks)
            if shard_of_rack(rack, config.racks, num_shards) == shard_index
        ]
        per_rack = config.per_rack
        self.nodes = [
            node
            for rack in self.racks
            for node in range(rack * per_rack, (rack + 1) * per_rack)
        ]
        self.records: Dict[int, List[tuple]] = {node: [] for node in self.nodes}
        self.pending_sync: Dict[int, int] = {}  # rack -> virtual send time
        self.skew_estimates: Dict[int, int] = {}  # rack -> Cristian estimate
        self.polls = 0
        self.probes_sent = 0
        self.probes_received = 0
        self.replies_received = 0
        self.sync_requests = 0
        self.rtt_sum = 0
        self.rtt_count = 0

        for node in self.nodes:
            engine.schedule_at(config.tick_ns, self._tick, node, 0)
        # Telemetry polls are pre-scheduled for the whole run (the
        # always-on agent cadence is known upfront), which keeps the
        # resident heap at fleet scale -- exactly the regime the
        # sharded substrate exists for.
        for node in self.nodes:
            poll = self._poll
            for tick in range(config.ticks):
                base = (tick + 1) * config.tick_ns
                for j in range(1, config.polls_per_tick + 1):
                    engine.schedule_at(base + j * config.local_ns, poll, node)
        for rack in self.racks:
            if rack == 0:
                continue  # the master is the reference; it never syncs
            engine.schedule_at(
                config.tick_ns + rack * SYNC_STAGGER_NS + 500,
                self._sync_send,
                rack,
            )
        if (
            config.crash_at_ns is not None
            and config.crash_in_shard == shard_index
        ):
            engine.schedule_at(config.crash_at_ns, self._crash)

    # -- helpers -----------------------------------------------------------

    def _shard_of_node(self, node: int) -> int:
        return shard_of_rack(
            node // self.config.per_rack, self.config.racks, self.num_shards
        )

    def _local_ts(self, node: int, time_ns: int) -> int:
        return time_ns + self.rack_skews[node // self.config.per_rack]

    def _crash(self) -> None:
        raise RuntimeError(f"injected fleet crash (shard {self.shard})")

    # -- workload ----------------------------------------------------------

    def _tick(self, node: int, tick: int) -> None:
        config = self.config
        now = self.engine.now
        if tick + 1 < config.ticks:
            self.engine.schedule_at(now + config.tick_ns, self._tick, node, tick + 1)
        # Staggered probe cadence: the per-tick probe map stays injective
        # (a subset of a permutation), so no receiver ever sees two
        # probes at one timestamp.
        if (tick + node) % config.probe_every:
            return
        recorded = tick % config.record_every == 0
        trace_id = tick * config.nodes + node + 1 if recorded else 0
        peer = _probe_peer(node, tick, config)
        self.outbox.send(
            deliver_ns=now + config.wire_ns,
            dst_shard=self._shard_of_node(peer),
            dst_node=peer,
            send_ns=now,
            src_node=node,
            kind=PROBE,
            trace_id=trace_id,
            payload=now,  # echoed back by the reply for RTT measurement
        )
        self.probes_sent += 1
        if recorded:
            self.records[node].append(
                (
                    trace_id,
                    TP_PROBE_TX,
                    self._local_ts(node, now),
                    _packet_len(trace_id),
                    node % 8,
                )
            )

    def _poll(self, node: int) -> None:
        self.polls += 1

    def _sync_send(self, rack: int) -> None:
        now = self.engine.now
        leader = rack * self.config.per_rack
        self.pending_sync[rack] = now
        self.outbox.send(
            deliver_ns=now + self.config.wire_ns,
            dst_shard=self._shard_of_node(0),
            dst_node=0,
            send_ns=now,
            src_node=leader,
            kind=SYNC_REQ,
        )

    def deliver(self, message: BoundaryMessage) -> None:
        config = self.config
        now = self.engine.now
        kind = message.kind
        if kind == PROBE:
            self.probes_received += 1
            node = message.dst_node
            if message.trace_id:
                self.records[node].append(
                    (
                        message.trace_id,
                        TP_PROBE_RX,
                        self._local_ts(node, now),
                        _packet_len(message.trace_id),
                        node % 8,
                    )
                )
            self.outbox.send(
                deliver_ns=now + config.wire_ns,
                dst_shard=self._shard_of_node(message.src_node),
                dst_node=message.src_node,
                send_ns=now,
                src_node=node,
                kind=REPLY,
                trace_id=message.trace_id,
                payload=message.payload,
            )
        elif kind == REPLY:
            self.replies_received += 1
            node = message.dst_node
            self.rtt_sum += now - message.payload
            self.rtt_count += 1
            if message.trace_id:
                self.records[node].append(
                    (
                        message.trace_id,
                        TP_REPLY_RX,
                        self._local_ts(node, now),
                        _packet_len(message.trace_id),
                        node % 8,
                    )
                )
        elif kind == SYNC_REQ:
            self.sync_requests += 1
            self.outbox.send(
                deliver_ns=now + config.wire_ns,
                dst_shard=self._shard_of_node(message.src_node),
                dst_node=message.src_node,
                send_ns=now,
                src_node=0,
                kind=SYNC_RESP,
                payload=self._local_ts(0, now),  # the master clock reading
            )
        elif kind == SYNC_RESP:
            # Cristian's algorithm; with symmetric wire latency and pure
            # offsets the estimate is *exact* (docs/SHARDING.md).
            rack = message.dst_node // config.per_rack
            t0 = self.pending_sync.pop(rack)
            rtt = now - t0
            self.skew_estimates[rack] = self._local_ts(message.dst_node, now) - (
                message.payload + rtt // 2
            )
        else:  # pragma: no cover - scenario bug
            raise SimulationError(f"unknown boundary message kind {kind}")

    # -- results -----------------------------------------------------------

    def collect(self) -> Dict[str, Any]:
        """Picklable per-shard result: packed record blobs per node,
        recovered skews, and workload counters."""
        pack = _RECORD.pack
        return {
            "shard": self.shard,
            "blobs": {
                node: b"".join(pack(*record) for record in records)
                for node, records in self.records.items()
            },
            "skews": dict(self.skew_estimates),
            "counters": {
                "polls": self.polls,
                "probes_sent": self.probes_sent,
                "probes_received": self.probes_received,
                "replies_received": self.replies_received,
                "sync_requests": self.sync_requests,
                "rtt_sum": self.rtt_sum,
                "rtt_count": self.rtt_count,
            },
        }


def build_fleet_shard(
    config: FleetConfig, shard_index: int, num_shards: int, outbox: BoundaryOutbox
) -> _FleetWorld:
    """Shard-program builder for :class:`ShardCoordinator`; module-level
    so ``functools.partial(build_fleet_shard, config)`` pickles into
    spawned workers."""
    return _FleetWorld(config, shard_index, num_shards, outbox, ShardEngine())


class FleetRunResult(NamedTuple):
    """A fleet run, merged: the TraceDB, the cross-mode fingerprint, and
    the deterministic metrics dict the benchmarks report."""

    db: TraceDB
    digest16: str
    metrics: Dict[str, object]
    skews: Dict[int, int]
    # The drained streaming aggregator over the merge path (every
    # per-shard collector's blobs fanned into one set of tumbling
    # windows); its closed frames are part of the fingerprint.
    streaming: Optional[StreamingAggregator] = None


def merge_fleet_results(
    config: FleetConfig, results: List[Dict[str, Any]]
) -> FleetRunResult:
    """Merge per-shard collect() payloads into one TraceDB via the
    packed-blob path, de-skewing each node with its rack's recovered
    sync estimate, and fingerprint the mode-independent content."""
    blobs: Dict[int, bytes] = {}
    skews: Dict[int, int] = {}
    totals: Dict[str, int] = {}
    for result in results:
        blobs.update(result["blobs"])
        skews.update(result["skews"])
        for key, value in result["counters"].items():
            totals[key] = totals.get(key, 0) + value

    db = TraceDB()
    digest = hashlib.sha256()
    # One streaming aggregator spans the whole merge: every shard's
    # collected blobs fan into the same tumbling windows (standalone --
    # no collector -- so windows only close in close_all(), after every
    # node's whole-run blob has been replayed).
    streaming = StreamingAggregator(
        StreamingConfig(chain=FLEET_CHAIN, window_ns=config.tick_ns)
    )
    per_rack = config.per_rack
    for node in sorted(blobs):
        name = f"node-{node:04d}"
        estimate = skews.get(node // per_rack, 0)
        if estimate:
            db.set_clock_skew(name, -estimate)
        db.insert_packed(name, blobs[node], FLEET_LABELS)
        streaming.observe_batch(
            name, blobs[node], FLEET_LABELS, skew_ns=-estimate if estimate else 0
        )
        digest.update(struct.pack("<I", node))
        digest.update(blobs[node])
    streaming.close_all()
    for frame in streaming.frames:
        digest.update(canonical_json(frame.as_dict()).encode())
    for rack in sorted(skews):
        digest.update(struct.pack("<iq", rack, skews[rack]))
    for key in sorted(totals):
        digest.update(f"{key}={totals[key]};".encode())

    rtt_avg = totals["rtt_sum"] // totals["rtt_count"] if totals.get("rtt_count") else 0
    metrics: Dict[str, object] = {
        "nodes": config.nodes,
        "racks": config.racks,
        "ticks": config.ticks,
        "rows_inserted": db.rows_inserted,
        "rtt_avg_ns": rtt_avg,
        "skew_racks_recovered": len(skews),
        "stream_windows_closed": streaming.windows_closed,
        "stream_records": streaming.records,
        "digest16": digest.hexdigest()[:16],
    }
    return FleetRunResult(
        db=db,
        digest16=metrics["digest16"],
        metrics=metrics,
        skews=skews,
        streaming=streaming,
    )


def run_macro_fleet(
    config: FleetConfig = FleetConfig(),
    shards: int = 1,
    workers: bool = False,
    mp_start_method: Optional[str] = None,
) -> FleetRunResult:
    """Run the fleet scenario and merge the result.

    ``shards=1`` without workers is the plain single-Engine baseline;
    otherwise a :class:`ShardCoordinator` advances the shard programs
    (``workers=True`` hosts them on multiprocessing workers -- which the
    coordinator downgrades to in-process when ``shards == 1``)."""
    if shards < 1:
        raise SimulationError(f"need at least one shard, got {shards}")
    if shards == 1 and not workers:
        engine = Engine()
        world_cell: List[_FleetWorld] = []
        outbox = InlineOutbox(
            engine, lambda message: world_cell[0].deliver(message), config.lookahead_ns
        )
        world_cell.append(_FleetWorld(config, 0, 1, outbox, engine))
        engine.run(until=config.end_ns)
        results = [world_cell[0].collect()]
        rounds = 0
        boundary = outbox.sent_total
        worker_count = 0
    else:
        coordinator = ShardCoordinator(
            shards,
            functools.partial(build_fleet_shard, config),
            lookahead_ns=config.lookahead_ns,
            workers=workers,
            mp_start_method=mp_start_method,
        )
        run: CoordinatorRun = coordinator.run(config.end_ns)
        results = run.results
        rounds = run.rounds
        boundary = run.boundary_messages
        worker_count = run.workers

    merged = merge_fleet_results(config, results)
    merged.metrics.update(
        {
            "shards": shards,
            "workers": worker_count,
            "rounds": rounds,
            "boundary_messages": boundary,
        }
    )
    return merged


def macro_fleet_digest(ticks: int = 10, shards: int = 4) -> str:
    """16-hex-char digest of a small deterministic run (the
    ScenarioSpec registry's digest hook); the fleet result already
    carries its own order-insensitive digest."""
    result = run_macro_fleet(FleetConfig(ticks=ticks), shards=shards)
    return result.digest16
