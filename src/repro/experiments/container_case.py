"""Case Study III: bottlenecks of the container overlay (§IV-E, Figs. 12-13).

Two KVM VMs on one host; Docker containers on a VXLAN overlay between
them (etcd control store).  Measurements:

* Fig. 12(b): Netperf/iPerf TCP and UDP throughput, VM-to-VM vs
  container-to-container (paper: containers reach only 16.8 % / 22.9 %
  of the VM TCP/UDP numbers);
* Fig. 13(a): ``net_rx_action`` execution rate (containers ~4.5x the
  VM case despite far lower throughput) and its distribution across
  CPUs via ``get_rps_cpu`` (VMs ~99.7 % on CPU 0, containers spread,
  ~63 % on CPU 0) -- both measured with vNetTracer counting probes;
* Fig. 13(b): the packet data path, reconstructed from per-device
  trace records ordered by timestamp: the overlay path is much deeper
  (VXLAN decap, bridge, veth reinjections).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core import ActionSpec, FilterRule, TracepointSpec, TracingSpec, VNetTracer
from repro.experiments.topologies import OverlayCaseScene, build_overlay_case
from repro.net.packet import IPPROTO_TCP
from repro.workloads.netperf import NetperfClient, NetperfServer

WARMUP_NS = 100_000_000
VM_GSO_BYTES = 65160
NETPERF_PORT = 12865
UDP_RATE_PPS = 150_000
# netperf UDP_STREAM default-ish large sends: UFO carries them whole on
# the virtio path; the VXLAN tunnel must fragment them to the wire.
UDP_DATAGRAM_BYTES = 16_384


@dataclass
class ThroughputPair:
    vm_bps: float
    container_bps: float

    @property
    def ratio(self) -> float:
        return self.container_bps / self.vm_bps if self.vm_bps else 0.0


def _run_stream(
    scene: OverlayCaseScene,
    container_path: bool,
    udp: bool,
    duration_ns: int,
) -> float:
    engine = scene.engine
    if container_path:
        server_node, server_ip = scene.container2.node, scene.c2_ip
        client_node, client_ip = scene.container1.node, scene.c1_ip
    else:
        server_node, server_ip = scene.vm2.node, scene.vm2_ip
        client_node, client_ip = scene.vm1.node, scene.vm1_ip

    server = NetperfServer(server_node, server_ip, port=NETPERF_PORT, cpu_index=1, udp=udp)
    client = NetperfClient(
        client_node,
        client_ip,
        server_ip,
        server_port=NETPERF_PORT,
        mode="UDP_STREAM" if udp else "TCP_STREAM",
        gso_bytes=VM_GSO_BYTES,
        udp_payload_bytes=UDP_DATAGRAM_BYTES,
        udp_rate_pps=UDP_RATE_PPS,
        cpu_index=1,
    )
    client.start(duration_ns + WARMUP_NS)
    engine.schedule(WARMUP_NS, server.reset_window)
    engine.run(until=WARMUP_NS + duration_ns + 100_000_000)
    return server.goodput_bps()


def run_fig12b(seed: int = 23, duration_ns: int = 400_000_000) -> Dict[str, ThroughputPair]:
    """Netperf TCP and UDP goodput, VM path vs overlay path."""
    results: Dict[str, ThroughputPair] = {}
    for name, udp in (("netperf_tcp", False), ("netperf_udp", True)):
        vm_bps = _run_stream(build_overlay_case(seed=seed), False, udp, duration_ns)
        ct_bps = _run_stream(build_overlay_case(seed=seed), True, udp, duration_ns)
        results[name] = ThroughputPair(vm_bps, ct_bps)
    return results


@dataclass
class SoftirqResult:
    path: str
    goodput_bps: float
    net_rx_rate_per_s: float
    cpu_distribution: Dict[int, float]
    softirq_invocations: List[int]


def run_fig13a_path(
    container_path: bool, seed: int = 23, duration_ns: int = 400_000_000
) -> SoftirqResult:
    """Trace net_rx_action rate + get_rps_cpu distribution on the
    receiving VM during a netperf TCP run."""
    scene = build_overlay_case(seed=seed)
    engine = scene.engine
    receiver = scene.vm2.node

    tracer = VNetTracer(engine)
    tracer.add_agent(receiver, enable_packet_ids=False)
    spec = TracingSpec(
        rule=FilterRule(),  # count every softirq / steering decision
        tracepoints=[
            TracepointSpec(
                node=receiver.name,
                hook="kprobe:net_rx_action",
                label="vm2:net_rx_action",
                id_mode="none",
            ),
            TracepointSpec(
                node=receiver.name,
                hook="kprobe:get_rps_cpu",
                label="vm2:get_rps_cpu",
                id_mode="none",
            ),
        ],
        action=ActionSpec(record=True, count=True),
    )
    tracer.deploy(spec)

    goodput = _run_stream(scene, container_path, udp=False, duration_ns=duration_ns)
    tracer.collect()
    return SoftirqResult(
        path="container" if container_path else "vm",
        goodput_bps=goodput,
        net_rx_rate_per_s=tracer.rate("vm2:net_rx_action"),
        cpu_distribution=tracer.cpu_distribution("vm2:get_rps_cpu"),
        softirq_invocations=list(receiver.softirq.invocations),
    )


def run_fig13a(seed: int = 23, duration_ns: int = 400_000_000) -> Dict[str, SoftirqResult]:
    return {
        "vm": run_fig13a_path(False, seed=seed, duration_ns=duration_ns),
        "container": run_fig13a_path(True, seed=seed, duration_ns=duration_ns),
    }


@dataclass
class DataPathResult:
    path: str
    hops: List[str]  # unique devices in first-traversal order
    raw_records: int  # total records for the chosen trace ID


def run_fig13b_path(
    container_path: bool, seed: int = 23, duration_ns: int = 150_000_000
) -> DataPathResult:
    """Reconstruct the receive-side data path from per-device records.

    Tracing scripts sit on every device of the receiving VM; the hop
    sequence of a single traced packet (ordered by timestamp) is the
    Fig. 13(b) picture.  On the overlay path the scripts must strip the
    VXLAN header to match the inner flow (``strip_vxlan=True``).
    """
    scene = build_overlay_case(seed=seed)
    engine = scene.engine
    receiver = scene.vm2.node

    tracer = VNetTracer(engine)
    tracer.add_agent(scene.vm1.node)
    tracer.add_agent(receiver)

    if container_path:
        rule = FilterRule(dst_ip=scene.c2_ip, dst_port=NETPERF_PORT, protocol=IPPROTO_TCP)
    else:
        rule = FilterRule(dst_ip=scene.vm2_ip, dst_port=NETPERF_PORT, protocol=IPPROTO_TCP)

    tracepoints = []
    for device_name in receiver.devices:
        if device_name == "lo":
            continue
        tracepoints.append(
            TracepointSpec(
                node=receiver.name,
                hook=f"dev:{device_name}",
                label=f"vm2:{device_name}",
                strip_vxlan=True,
                id_mode="tcp-option",
            )
        )
    # The application end of the path.
    tracepoints.append(
        TracepointSpec(
            node=receiver.name,
            hook="kretprobe:tcp_recvmsg",
            label="vm2:tcp_recvmsg",
            strip_vxlan=True,
            id_mode="tcp-option",
        )
    )
    spec = TracingSpec(rule=rule, tracepoints=tracepoints)
    tracer.deploy(spec)

    _run_stream(scene, container_path, udp=False, duration_ns=duration_ns)
    tracer.collect()

    # Pick a trace ID seen at the most points; the unique devices in
    # first-traversal order are the data path (segmentation makes one
    # super-segment's ID appear on every derived wire packet, hence the
    # de-duplication).
    best_rows: list = []
    for label in (tp.label for tp in tracepoints):
        for trace_id, _row in tracer.db.trace_ids_at(label).items():
            rows = tracer.db.rows_for_trace(trace_id)
            if len(rows) > len(best_rows):
                best_rows = rows
    hops: List[str] = []
    for row in best_rows:
        if row.label not in hops:
            hops.append(row.label)
    return DataPathResult(
        path="container" if container_path else "vm",
        hops=hops,
        raw_records=len(best_rows),
    )


def run_fig13b(seed: int = 23) -> Dict[str, DataPathResult]:
    return {
        "vm": run_fig13b_path(False, seed=seed),
        "container": run_fig13b_path(True, seed=seed),
    }
