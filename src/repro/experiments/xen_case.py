"""Case Study II: tuning the hypervisor scheduler (§IV-D, Figs. 10-11).

A 1-vCPU Xen VM runs the server application *inside a container*; a
CPU-bound VM is pinned to the same physical CPU.  The credit2
scheduler's context-switch rate limit (default 1000 µs) prevents the
woken I/O vCPU from preempting the hog, so every inbound packet waits
out the remainder of the hog's minimum slice:

* Fig. 10(a): Sockperf latency -- baseline (VM alone), shared core
  (99.9p blows up ~22x), shared core with ``ratelimit_us=0`` (back to
  near baseline);
* Fig. 10(b): the same three conditions under the Data Caching
  (memcached) workload at a fixed 5000 rps, GET:SET 4:1 (avg ~4.7x,
  tail ~7.5x in the paper);
* Fig. 11: vNetTracer's per-packet latency decomposition across
  eth0 (client) -> xenbr0 -> vif1.0 -> eth1 -> veth684a1d9, showing the
  vif->eth1 segment absorbing a 0..1000 µs scheduling sawtooth, and the
  jitter range exploding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core import FilterRule, TracepointSpec, TracingSpec, VNetTracer
from repro.core.metrics import latency_pairs
from repro.experiments.topologies import XenCaseScene, build_xen_case
from repro.net.packet import IPPROTO_UDP
from repro.workloads.memcached import DataCachingClient, MemcachedServer
from repro.workloads.sockperf import SockperfClient, SockperfServer
from repro.workloads.stats import LatencySummary, jitter_range

SOCKPERF_PORT = 11111
WARMUP_NS = 100_000_000

CONDITIONS = ("baseline", "shared", "shared+ratelimit0")


def _build(condition: str, seed: int) -> XenCaseScene:
    if condition == "baseline":
        return build_xen_case(seed=seed, with_cpu_hog=False, ratelimit_us=1000)
    if condition == "shared":
        return build_xen_case(seed=seed, with_cpu_hog=True, ratelimit_us=1000)
    if condition == "shared+ratelimit0":
        return build_xen_case(seed=seed, with_cpu_hog=True, ratelimit_us=0)
    raise ValueError(f"unknown condition {condition!r}; choose from {CONDITIONS}")


@dataclass
class XenSockperfResult:
    condition: str
    sockperf: LatencySummary
    jitter_range_us: Tuple[float, float]


def run_fig10a_condition(
    condition: str,
    seed: int = 17,
    duration_ns: int = 1_000_000_000,
    mps: int = 1000,
) -> XenSockperfResult:
    """One bar group of Fig. 10(a)."""
    scene = _build(condition, seed)
    engine = scene.engine
    server = SockperfServer(scene.container.node, scene.container_ip, port=SOCKPERF_PORT)
    client = SockperfClient(
        scene.client_host.node,
        scene.client_ip,
        scene.container_ip,
        server_port=SOCKPERF_PORT,
        mps=mps,
        mode="under-load",
    )
    client.start(duration_ns, start_delay_ns=WARMUP_NS)
    engine.run(until=WARMUP_NS + duration_ns + 300_000_000)
    low, high = client.jitter_range_ns()
    return XenSockperfResult(
        condition=condition,
        sockperf=client.summary(),
        jitter_range_us=(low / 1e3, high / 1e3),
    )


def run_fig10a(seed: int = 17, duration_ns: int = 1_000_000_000) -> Dict[str, XenSockperfResult]:
    return {
        condition: run_fig10a_condition(condition, seed=seed, duration_ns=duration_ns)
        for condition in CONDITIONS
    }


@dataclass
class XenMemcachedResult:
    condition: str
    latency: LatencySummary
    requests_issued: int


def run_fig10b_condition(
    condition: str,
    seed: int = 17,
    duration_ns: int = 1_000_000_000,
    rps: int = 5000,
) -> XenMemcachedResult:
    """One bar group of Fig. 10(b): Data Caching at a fixed rate."""
    scene = _build(condition, seed)
    engine = scene.engine
    server = MemcachedServer(scene.container.node, scene.container_ip, cpu_index=0)
    client = DataCachingClient(
        scene.client_host.node,
        scene.client_ip,
        scene.container_ip,
        workers=4,
        connections_per_worker=5,
        rps=rps,
    )
    # Let the 20 connections establish before driving load.
    client.start(duration_ns, start_delay_ns=WARMUP_NS)
    engine.run(until=WARMUP_NS + duration_ns + 500_000_000)
    return XenMemcachedResult(
        condition=condition,
        latency=client.summary(),
        requests_issued=client.issued,
    )


def run_fig10b(seed: int = 17, duration_ns: int = 1_000_000_000) -> Dict[str, XenMemcachedResult]:
    return {
        condition: run_fig10b_condition(condition, seed=seed, duration_ns=duration_ns)
        for condition in CONDITIONS
    }


@dataclass
class RatelimitSweepPoint:
    ratelimit_us: int
    sockperf: LatencySummary
    hog_share: float  # fraction of pCPU time the CPU-bound VM kept
    context_switches: int


def run_ratelimit_sweep(
    values_us: Tuple[int, ...] = (0, 100, 250, 500, 1000, 2000),
    seed: int = 17,
    duration_ns: int = 400_000_000,
    mps: int = 5000,
) -> List[RatelimitSweepPoint]:
    """Extension of Case Study II: sweep the credit2 rate limit.

    The paper sets it to 0 and notes the mechanism "performs well and
    does not harm the throughput of most network applications"; the
    sweep quantifies the actual latency/context-switch trade-off an
    operator would tune.
    """
    points = []
    for ratelimit_us in values_us:
        scene = build_xen_case(seed=seed, with_cpu_hog=True, ratelimit_us=ratelimit_us)
        engine = scene.engine
        SockperfServer(scene.container.node, scene.container_ip, port=SOCKPERF_PORT)
        client = SockperfClient(
            scene.client_host.node, scene.client_ip, scene.container_ip,
            server_port=SOCKPERF_PORT, mps=mps, mode="under-load",
        )
        client.start(duration_ns, start_delay_ns=WARMUP_NS)
        engine.run(until=WARMUP_NS + duration_ns + 300_000_000)
        scheduler = scene.server_host.schedulers[0]
        hog = scene.hog_vm.vcpus[0]
        io = scene.io_vm.vcpus[0]
        total_run = hog.total_run_ns + io.total_run_ns
        points.append(
            RatelimitSweepPoint(
                ratelimit_us=ratelimit_us,
                sockperf=client.summary(),
                hog_share=hog.total_run_ns / total_run if total_run else 0.0,
                context_switches=scheduler.context_switches,
            )
        )
    return points


@dataclass
class XenDecompositionResult:
    condition: str
    # segment label -> ordered (send_time, latency_ns) pairs (Fig. 11 series)
    segments: Dict[str, List[Tuple[int, int]]]
    segment_summaries: Dict[str, LatencySummary]
    one_way_jitter_range_us: Tuple[float, float]
    clock_skew_estimate_ns: Optional[int]


def run_fig11_condition(
    condition: str,
    seed: int = 17,
    packets: int = 500,
    mps: int = 1000,
) -> XenDecompositionResult:
    """Per-packet latency decomposition (Fig. 11a when 'baseline',
    Fig. 11b when 'shared')."""
    scene = _build(condition, seed)
    engine = scene.engine
    server = SockperfServer(scene.container.node, scene.container_ip, port=SOCKPERF_PORT)
    client = SockperfClient(
        scene.client_host.node,
        scene.client_ip,
        scene.container_ip,
        server_port=SOCKPERF_PORT,
        mps=mps,
        mode="under-load",
    )

    tracer = VNetTracer(engine)
    for node in (scene.client_host.node, scene.server_host.node, scene.io_vm.node):
        tracer.add_agent(node)

    # Cross-machine alignment: Cristian's algorithm between the client
    # (master) and the server's Dom0; the guest shares Dom0's
    # paravirtual clocksource, so the same offset applies to it.
    sync = tracer.synchronize_clocks(
        scene.client_host.node,
        scene.client_ip,
        "dev:eth0",
        scene.server_host.node,
        scene.server_host.node.device("xenbr0").ip,
        "dev:eth0",
    )

    chain = [
        "client:eth0",
        "dom0:xenbr0",
        "dom0:vif1.0",
        "vm:eth1",
        f"vm:{scene.veth_name}",
    ]
    spec = TracingSpec(
        rule=FilterRule(dst_ip=scene.container_ip, dst_port=SOCKPERF_PORT, protocol=IPPROTO_UDP),
        tracepoints=[
            TracepointSpec(node=scene.client_host.node.name, hook="dev:eth0", label=chain[0]),
            TracepointSpec(node=scene.server_host.node.name, hook="dev:xenbr0", label=chain[1]),
            TracepointSpec(node=scene.server_host.node.name, hook="dev:vif1.0", label=chain[2]),
            TracepointSpec(node=scene.io_vm.node.name, hook="dev:eth1", label=chain[3]),
            TracepointSpec(
                node=scene.io_vm.node.name, hook=f"dev:{scene.veth_name}", label=chain[4]
            ),
        ],
    )

    def deploy_and_start() -> None:
        if scene.io_vm.node.name in tracer.clock_estimates or True:
            # Dom0's skew estimate applies to the guest as well.
            estimate = tracer.clock_estimates.get(scene.server_host.node.name)
            if estimate is not None:
                tracer.db.set_clock_skew(scene.io_vm.node.name, estimate.skew_ns)
        tracer.deploy(spec)
        client.start(int(packets * 1e9 / mps), start_delay_ns=20_000_000)

    # Start the workload once clock sync completed.
    original_done = sync.on_done

    def on_sync_done(estimate) -> None:
        if original_done is not None:
            original_done(estimate)
        deploy_and_start()

    sync.on_done = on_sync_done

    engine.run(until=int(2e9 + packets * 1e9 / mps))
    tracer.collect()

    segments = {}
    summaries = {}
    for from_label, to_label in zip(chain, chain[1:]):
        key = f"{from_label} to {to_label}"
        pairs = latency_pairs(tracer.db, from_label, to_label)
        segments[key] = pairs
        if pairs:
            from repro.workloads.stats import summarize_latencies

            summaries[key] = summarize_latencies([lat for _t, lat in pairs])

    low, high = client.jitter_range_ns()
    estimate = tracer.clock_estimates.get(scene.server_host.node.name)
    return XenDecompositionResult(
        condition=condition,
        segments=segments,
        segment_summaries=summaries,
        one_way_jitter_range_us=(low / 1e3, high / 1e3),
        clock_skew_estimate_ns=estimate.skew_ns if estimate else None,
    )
