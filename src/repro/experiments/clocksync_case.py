"""Cristian's-algorithm accuracy (§III-B, Fig. 4).

Measures how close the estimated skew between the master and a
monitored node comes to the configured ground truth, across clock
offsets/drifts and with background load on the link (the min-of-100
filter is what defends against interference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.clocksync import ClockSynchronizer
from repro.experiments.topologies import build_two_host_kvm
from repro.workloads.iperf import IperfUDPClient, IperfUDPServer


@dataclass
class ClockSyncResult:
    configured_offset_ns: int
    configured_drift_ppm: float
    true_skew_ns: int  # ground truth at estimation time (master - node)
    estimated_skew_ns: int
    error_ns: int
    one_way_ns: int
    rtt_min_ns: int
    samples: int
    background_load: bool


def run_clock_sync(
    offset_ns: int = 1_500_000,
    drift_ppm: float = 20.0,
    samples: int = 100,
    background_load: bool = False,
    seed: int = 7,
) -> ClockSyncResult:
    """One estimation run between host1 (master) and host2."""
    scene = build_two_host_kvm(
        seed=seed, clock_offset2_ns=offset_ns, clock_drift2_ppm=drift_ppm
    )
    engine = scene.engine

    if background_load:
        # Bulk VM-to-VM traffic sharing the same physical link.
        server = IperfUDPServer(scene.vm2.node, scene.vm2_ip, cpu_index=2)
        client = IperfUDPClient(
            scene.vm1.node, scene.vm1_ip, scene.vm2_ip, rate_pps=25_000, cpu_index=2
        )
        client.start(250_000_000)

    sync = ClockSynchronizer(
        scene.host1.node,
        scene.host1_ip,
        "dev:eth0",
        scene.host2.node,
        scene.host2_ip,
        "dev:eth0",
        samples=samples,
    )
    done: List[ClockSyncResult] = []

    def on_done(estimate) -> None:
        true_skew = scene.host1.clock.monotonic_ns() - scene.host2.clock.monotonic_ns()
        done.append(
            ClockSyncResult(
                configured_offset_ns=offset_ns,
                configured_drift_ppm=drift_ppm,
                true_skew_ns=true_skew,
                estimated_skew_ns=estimate.skew_ns,
                error_ns=abs(estimate.skew_ns - true_skew),
                one_way_ns=estimate.one_way_ns,
                rtt_min_ns=estimate.rtt_min_ns,
                samples=estimate.samples,
                background_load=background_load,
            )
        )

    sync.on_done = on_done
    sync.start()
    engine.run(until=300_000_000)
    if not done:
        raise RuntimeError("clock sync did not complete")
    return done[0]


def run_fig4_sweep(seed: int = 7) -> List[ClockSyncResult]:
    """Offsets/drifts, idle and loaded."""
    results = []
    for offset_ns, drift_ppm in ((0, 0.0), (1_500_000, 20.0), (-4_000_000, -35.0)):
        for load in (False, True):
            results.append(
                run_clock_sync(
                    offset_ns=offset_ns,
                    drift_ppm=drift_ppm,
                    background_load=load,
                    seed=seed,
                )
            )
    return results
