"""Timeline exporters: Chrome trace-event JSON and OTLP-style JSON.

Two interchange formats plus a terminal rendering:

* :func:`chrome_trace_dict` / :func:`chrome_trace_json` -- the Chrome
  trace-event format (``ph: "X"`` complete events), directly loadable
  in Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.  Each
  packet becomes a process row, each node a thread row inside it, and
  the control plane (deploys, batch shipments) process 0.
* :func:`otlp_dict` / :func:`otlp_json` -- an OTLP/JSON-style
  ``resourceSpans`` document (the OpenTelemetry trace shape), with the
  32-bit in-packet ID widened into the 128-bit ``traceId`` and span IDs
  derived deterministically from (trace ID, preorder index).
* :func:`timeline_text` -- indented span trees for the terminal.

Determinism: both JSON serializations are canonical (sorted keys, fixed
separators, no wall-clock fields), so two runs of the same scenario
produce byte-identical documents -- the property the determinism CI job
diffs.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.analysis.reports import format_ns
from repro.tracing.spans import Span, SpanForest, SpanTree

# Synthetic trace ID for the control-plane track: one past the u32
# range, so it can never collide with an in-packet ID.
CONTROL_TRACE_ID = 1 << 32

_CANONICAL = {"sort_keys": True, "separators": (",", ":")}


def _canonical_json(document: Dict) -> str:
    return json.dumps(document, **_CANONICAL) + "\n"


# -- Chrome trace events ------------------------------------------------------


def _us(value_ns: int) -> float:
    """Trace-event timestamps are microseconds; keep ns precision."""
    return value_ns / 1000.0


def _chrome_span_events(
    span: Span, pid: int, tids: Dict[str, int], events: List[Dict]
) -> None:
    tid = tids.setdefault(span.node, len(tids))
    events.append(
        {
            "name": span.name,
            "cat": span.kind,
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": _us(span.start_ns),
            "dur": _us(span.duration_ns),
            "args": {key: span.attributes[key] for key in sorted(span.attributes)},
        }
    )
    for child in span.children:
        _chrome_span_events(child, pid, tids, events)


def _chrome_process(root: Span, pid: int, label: str, events: List[Dict]) -> None:
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
    )
    tids: Dict[str, int] = {}
    _chrome_span_events(root, pid, tids, events)
    for node, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": node},
            }
        )


def chrome_trace_dict(forest: SpanForest) -> Dict:
    """The forest as a Chrome trace-event document (Perfetto-loadable)."""
    events: List[Dict] = []
    if forest.control_root is not None:
        _chrome_process(forest.control_root, 0, "control-plane", events)
    for index, tree in enumerate(forest, start=1):
        noun = "request" if tree.root.kind == "rpc" else "packet"
        _chrome_process(
            tree.root, index, f"{noun} 0x{tree.trace_id:08x}", events
        )
    return {
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.tracing",
            "trees": len(forest.trees),
            "orphan_records": forest.orphan_records,
        },
        "traceEvents": events,
    }


def chrome_trace_json(forest: SpanForest) -> str:
    """Canonical (byte-stable) serialization of :func:`chrome_trace_dict`."""
    return _canonical_json(chrome_trace_dict(forest))


# -- OTLP-style JSON ----------------------------------------------------------


def _otlp_attributes(span: Span) -> List[Dict]:
    attributes = [{"key": "span.kind", "value": {"stringValue": span.kind}}]
    if span.node:
        attributes.append({"key": "node", "value": {"stringValue": span.node}})
    for key in sorted(span.attributes):
        value = span.attributes[key]
        if isinstance(value, bool):
            encoded = {"boolValue": value}
        elif isinstance(value, int):
            encoded = {"intValue": str(value)}  # OTLP/JSON int64s are strings
        elif isinstance(value, float):
            encoded = {"doubleValue": value}
        else:
            encoded = {"stringValue": str(value)}
        attributes.append({"key": key, "value": encoded})
    return attributes


def _otlp_spans(
    span: Span,
    trace_id: int,
    parent_span_id: str,
    counter: List[int],
    out: List[Dict],
) -> None:
    span_id = f"{trace_id & 0xFFFFFFFF:08x}{counter[0]:08x}"
    counter[0] += 1
    out.append(
        {
            "traceId": f"{trace_id:032x}",
            "spanId": span_id,
            "parentSpanId": parent_span_id,  # "" marks a root span
            "name": span.name,
            "kind": "SPAN_KIND_INTERNAL",
            "startTimeUnixNano": str(span.start_ns),
            "endTimeUnixNano": str(span.end_ns),
            "attributes": _otlp_attributes(span),
        }
    )
    for child in span.children:
        _otlp_spans(child, trace_id, span_id, counter, out)


def otlp_dict(forest: SpanForest) -> Dict:
    """The forest as an OTLP-style ``resourceSpans`` document."""
    spans: List[Dict] = []
    for tree in forest:
        _otlp_spans(tree.root, tree.trace_id, "", [0], spans)
    if forest.control_root is not None:
        _otlp_spans(forest.control_root, CONTROL_TRACE_ID, "", [0], spans)
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [
                        {
                            "key": "service.name",
                            "value": {"stringValue": "vnettracer-repro"},
                        }
                    ]
                },
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.tracing", "version": "1"},
                        "spans": spans,
                    }
                ],
            }
        ]
    }


def otlp_json(forest: SpanForest) -> str:
    """Canonical (byte-stable) serialization of :func:`otlp_dict`."""
    return _canonical_json(otlp_dict(forest))


# -- terminal rendering -------------------------------------------------------


def span_tree_text(tree: SpanTree) -> str:
    """One tree as indented text, durations humanized."""
    lines: List[str] = []

    def render(span: Span, depth: int) -> None:
        pad = "  " * depth
        detail = ""
        if span.kind == "device":
            offset = span.attributes.get("clock_offset_ns", 0)
            detail = f"  [clock offset {offset:+d} ns]"
        duration = format_ns(span.duration_ns)
        lines.append(f"{pad}{span.kind:7s} {span.name:44s} {duration:>10s}{detail}")
        for child in span.children:
            render(child, depth + 1)

    render(tree.root, 0)
    return "\n".join(lines)


def timeline_text(forest: SpanForest, limit: Optional[int] = 3) -> str:
    """A forest summary plus the first ``limit`` trees (None = all)."""
    lines = [
        f"span forest: {len(forest.trees)} trees, {forest.span_count()} spans, "
        f"{forest.orphan_records} orphan records"
    ]
    trees = forest.trees if limit is None else forest.trees[:limit]
    for tree in trees:
        lines.append("")
        lines.append(span_tree_text(tree))
    if limit is not None and len(forest.trees) > limit:
        lines.append("")
        lines.append(f"... {len(forest.trees) - limit} more trees")
    if forest.control_root is not None:
        lines.append("")
        lines.append(
            span_tree_text(SpanTree(CONTROL_TRACE_ID, forest.control_root, 0))
        )
    return "\n".join(lines)
