"""Timeline exporters: Chrome trace-event JSON and OTLP-style JSON.

Two interchange formats plus a terminal rendering:

* :func:`chrome_trace_dict` / :func:`chrome_trace_json` -- the Chrome
  trace-event format (``ph: "X"`` complete events), directly loadable
  in Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.  Each
  packet becomes a process row, each node a thread row inside it, and
  the control plane (deploys, batch shipments) process 0.
* :func:`otlp_dict` / :func:`otlp_json` -- an OTLP/JSON-style
  ``resourceSpans`` document (the OpenTelemetry trace shape), with the
  32-bit in-packet ID widened into the 128-bit ``traceId`` and span IDs
  derived deterministically from (trace ID, preorder index).
* :func:`timeline_text` -- indented span trees for the terminal.

Determinism: both JSON serializations are canonical (sorted keys, fixed
separators, no wall-clock fields), so two runs of the same scenario
produce byte-identical documents -- the property the determinism CI job
diffs.
"""

from __future__ import annotations

import json
from json.encoder import encode_basestring_ascii as _escape
from typing import Dict, List, Optional

from repro.analysis.reports import format_ns
from repro.tracing.spans import Span, SpanForest, SpanTree

# Synthetic trace ID for the control-plane track: one past the u32
# range, so it can never collide with an in-packet ID.
CONTROL_TRACE_ID = 1 << 32

_CANONICAL = {"sort_keys": True, "separators": (",", ":")}


def _canonical_json(document: Dict) -> str:
    return json.dumps(document, **_CANONICAL) + "\n"


# -- Chrome trace events ------------------------------------------------------


def _us(value_ns: int) -> float:
    """Trace-event timestamps are microseconds; keep ns precision."""
    return value_ns / 1000.0


def _chrome_span_events(
    span: Span, pid: int, tids: Dict[str, int], events: List[Dict]
) -> None:
    tid = tids.setdefault(span.node, len(tids))
    events.append(
        {
            "name": span.name,
            "cat": span.kind,
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": _us(span.start_ns),
            "dur": _us(span.duration_ns),
            "args": {key: span.attributes[key] for key in sorted(span.attributes)},
        }
    )
    for child in span.children:
        _chrome_span_events(child, pid, tids, events)


def _chrome_process(root: Span, pid: int, label: str, events: List[Dict]) -> None:
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
    )
    tids: Dict[str, int] = {}
    _chrome_span_events(root, pid, tids, events)
    for node, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": node},
            }
        )


def chrome_trace_dict(forest: SpanForest) -> Dict:
    """The forest as a Chrome trace-event document (Perfetto-loadable)."""
    events: List[Dict] = []
    if forest.control_root is not None:
        _chrome_process(forest.control_root, 0, "control-plane", events)
    for index, tree in enumerate(forest, start=1):
        noun = "request" if tree.root.kind == "rpc" else "packet"
        _chrome_process(
            tree.root, index, f"{noun} 0x{tree.trace_id:08x}", events
        )
    return {
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.tracing",
            "trees": len(forest.trees),
            "orphan_records": forest.orphan_records,
        },
        "traceEvents": events,
    }


_INF = float("inf")


def _fast_value(value) -> str:
    """One JSON value exactly as the canonical ``json.dumps`` settings
    would emit it.  The scalar paths reproduce the C encoder's output
    (``encode_basestring_ascii`` is the same escaper, ``repr`` is what
    it uses for ints and finite floats); anything else falls back to
    ``json.dumps`` itself."""
    kind = type(value)
    if kind is str:
        return _escape(value)
    if kind is bool:
        return "true" if value else "false"
    if kind is int:
        return repr(value)
    if kind is float and -_INF < value < _INF:
        return repr(value)
    return json.dumps(value, **_CANONICAL)


# Escaped-string memo: span kinds, attribute keys, hop/device names and
# node names recur across thousands of spans, so escaping each string
# once dominates.  Bounded (cleared on overflow) so unique per-trace
# names cannot grow it without limit.
_ESCAPE_CACHE: Dict[str, str] = {}

# (attribute keyset in insertion order, span kind, attribute values in
# insertion order) -> rendered '{"args":{...},"cat":...' event prefix.
# Attribute payloads repeat heavily (every hop span of a flow carries
# the same cpu, every wire span the same endpoint pair), so most events
# reduce to one lookup plus the five per-span tail fields.  Bounded
# (cleared on overflow) because high-cardinality values -- trace IDs in
# packet roots -- would otherwise grow it without limit.
_EVENT_PREFIXES: Dict[tuple, str] = {}

# Span durations repeat across traces of the same flow shape (a hop's
# latency profile is narrow) while timestamps never do, so duration
# reprs memoize well.  ns delta -> repr(delta / 1000.0); bounded.
_DUR_REPRS: Dict[int, str] = {}


def _escape_cached(value: str) -> str:
    cached = _ESCAPE_CACHE.get(value)
    if cached is None:
        if len(_ESCAPE_CACHE) > (1 << 16):
            _ESCAPE_CACHE.clear()
        cached = _ESCAPE_CACHE[value] = _escape(value)
    return cached


def _chrome_process_fast(root: Span, pid: int, label: str, out: List[str]) -> None:
    """Serialize one process track (metadata + span events) straight to
    JSON fragments, matching :func:`_chrome_process`'s dicts under the
    canonical settings: keys are emitted pre-sorted, the traversal is
    the same pre-order, and tids are assigned in the same
    first-appearance order."""
    append = out.append
    append(
        '{"args":{"name":%s},"name":"process_name","ph":"M","pid":%d,"tid":0}'
        % (_escape(label), pid)
    )
    tids: Dict[str, int] = {}
    # One constant fragment per tid covers everything between "name" and
    # "ts" in canonical sorted-key order (ph < pid < tid < ts).
    tails: List[str] = []
    prefixes = _EVENT_PREFIXES
    dur_reprs = _DUR_REPRS
    join = "".join
    stack = [root]
    pop = stack.pop
    while stack:
        span = pop()
        node = span.node
        tid = tids.get(node)
        if tid is None:
            tid = tids[node] = len(tids)
            tails.append(',"ph":"X","pid":%d,"tid":%d,"ts":' % (pid, tid))
        attributes = span.attributes
        # dict views iterate in insertion order, so keys + values + kind
        # pin down the rendered prefix exactly.
        try:
            prefix_key = (
                tuple(attributes),
                span.kind,
                tuple(attributes.values()),
            )
            prefix = prefixes.get(prefix_key)
        except TypeError:  # unhashable attribute value (list, dict)
            prefix_key = None
            prefix = None
        if prefix is None:
            prefix = (
                '{"args":{'
                + ",".join(
                    _escape_cached(key) + ":" + _fast_value(attributes[key])
                    for key in sorted(attributes)
                )
                + '},"cat":'
                + _escape_cached(span.kind)
            )
            if prefix_key is not None:
                if len(prefixes) > (1 << 15):
                    prefixes.clear()
                prefixes[prefix_key] = prefix
        start_ns = span.start_ns
        delta = span.end_ns - start_ns
        dur = dur_reprs.get(delta)
        if dur is None:
            if len(dur_reprs) > (1 << 16):
                dur_reprs.clear()
            # ``repr`` of a finite float is exactly what the canonical
            # encoder emits (same for the timestamp below).
            dur = dur_reprs[delta] = repr(delta / 1000.0)
        append(
            join(
                (
                    prefix,
                    ',"dur":',
                    dur,
                    ',"name":',
                    _escape_cached(span.name),
                    tails[tid],
                    repr(start_ns / 1000.0),
                    "}",
                )
            )
        )
        children = span.children
        if children:
            stack.extend(reversed(children))
    for node, tid in tids.items():
        append(
            '{"args":{"name":%s},"name":"thread_name","ph":"M","pid":%d,"tid":%d}'
            % (_escape_cached(node), pid, tid)
        )


def chrome_trace_json(forest: SpanForest) -> str:
    """Canonical (byte-stable) serialization of :func:`chrome_trace_dict`.

    Built directly as a string in one pass over the forest -- no
    intermediate event dicts -- but byte-identical to
    ``json.dumps(chrome_trace_dict(forest), sort_keys=True,
    separators=(",", ":")) + "\\n"``; the differential suite
    (tests/test_tracing_batch.py) diffs the two on every scenario."""
    events: List[str] = []
    if forest.control_root is not None:
        _chrome_process_fast(forest.control_root, 0, "control-plane", events)
    for index, tree in enumerate(forest.trees, start=1):
        noun = "request" if tree.root.kind == "rpc" else "packet"
        _chrome_process_fast(
            tree.root, index, f"{noun} 0x{tree.trace_id:08x}", events
        )
    return (
        '{"displayTimeUnit":"ns","otherData":{"generator":"repro.tracing",'
        '"orphan_records":%d,"trees":%d},"traceEvents":[%s]}\n'
        % (forest.orphan_records, len(forest.trees), ",".join(events))
    )


# -- OTLP-style JSON ----------------------------------------------------------


def _otlp_attributes(span: Span) -> List[Dict]:
    attributes = [{"key": "span.kind", "value": {"stringValue": span.kind}}]
    if span.node:
        attributes.append({"key": "node", "value": {"stringValue": span.node}})
    for key in sorted(span.attributes):
        value = span.attributes[key]
        if isinstance(value, bool):
            encoded = {"boolValue": value}
        elif isinstance(value, int):
            encoded = {"intValue": str(value)}  # OTLP/JSON int64s are strings
        elif isinstance(value, float):
            encoded = {"doubleValue": value}
        else:
            encoded = {"stringValue": str(value)}
        attributes.append({"key": key, "value": encoded})
    return attributes


def _otlp_spans(
    span: Span,
    trace_id: int,
    parent_span_id: str,
    counter: List[int],
    out: List[Dict],
) -> None:
    span_id = f"{trace_id & 0xFFFFFFFF:08x}{counter[0]:08x}"
    counter[0] += 1
    out.append(
        {
            "traceId": f"{trace_id:032x}",
            "spanId": span_id,
            "parentSpanId": parent_span_id,  # "" marks a root span
            "name": span.name,
            "kind": "SPAN_KIND_INTERNAL",
            "startTimeUnixNano": str(span.start_ns),
            "endTimeUnixNano": str(span.end_ns),
            "attributes": _otlp_attributes(span),
        }
    )
    for child in span.children:
        _otlp_spans(child, trace_id, span_id, counter, out)


def otlp_dict(forest: SpanForest) -> Dict:
    """The forest as an OTLP-style ``resourceSpans`` document."""
    spans: List[Dict] = []
    for tree in forest:
        _otlp_spans(tree.root, tree.trace_id, "", [0], spans)
    if forest.control_root is not None:
        _otlp_spans(forest.control_root, CONTROL_TRACE_ID, "", [0], spans)
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [
                        {
                            "key": "service.name",
                            "value": {"stringValue": "vnettracer-repro"},
                        }
                    ]
                },
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.tracing", "version": "1"},
                        "spans": spans,
                    }
                ],
            }
        ]
    }


def otlp_json(forest: SpanForest) -> str:
    """Canonical (byte-stable) serialization of :func:`otlp_dict`."""
    return _canonical_json(otlp_dict(forest))


# -- terminal rendering -------------------------------------------------------


def span_tree_text(tree: SpanTree) -> str:
    """One tree as indented text, durations humanized."""
    lines: List[str] = []

    def render(span: Span, depth: int) -> None:
        pad = "  " * depth
        detail = ""
        if span.kind == "device":
            offset = span.attributes.get("clock_offset_ns", 0)
            detail = f"  [clock offset {offset:+d} ns]"
        duration = format_ns(span.duration_ns)
        lines.append(f"{pad}{span.kind:7s} {span.name:44s} {duration:>10s}{detail}")
        for child in span.children:
            render(child, depth + 1)

    render(tree.root, 0)
    return "\n".join(lines)


def timeline_text(forest: SpanForest, limit: Optional[int] = 3) -> str:
    """A forest summary plus the first ``limit`` trees (None = all)."""
    lines = [
        f"span forest: {len(forest.trees)} trees, {forest.span_count()} spans, "
        f"{forest.orphan_records} orphan records"
    ]
    trees = forest.trees if limit is None else forest.trees[:limit]
    for tree in trees:
        lines.append("")
        lines.append(span_tree_text(tree))
    if limit is not None and len(forest.trees) > limit:
        lines.append("")
        lines.append(f"... {len(forest.trees) - limit} more trees")
    if forest.control_root is not None:
        lines.append("")
        lines.append(
            span_tree_text(SpanTree(CONTROL_TRACE_ID, forest.control_root, 0))
        )
    return "\n".join(lines)
