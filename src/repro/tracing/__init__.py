"""Span-based trace reconstruction (timeline analysis).

Turns the flat :class:`~repro.core.tracedb.TraceDB` rows the collector
gathers into per-packet span trees, critical paths, per-hop latency
distributions, anomaly flags, and Perfetto/OTLP timeline exports.  See
``docs/TIMELINES.md`` and the ``repro timeline`` CLI verb.
"""

from repro.tracing.critical import (
    Anomaly,
    HopStats,
    aggregate_hops,
    critical_path,
    flag_anomalies,
    segments_from_forest,
)
from repro.tracing.export import (
    chrome_trace_dict,
    chrome_trace_json,
    otlp_dict,
    otlp_json,
    span_tree_text,
    timeline_text,
)
from repro.tracing.reconstruct import (
    SpanAssembler,
    build_control_root,
    build_span_tree,
    hop_name,
)
from repro.tracing.spans import Span, SpanForest, SpanTree

__all__ = [
    "Anomaly",
    "HopStats",
    "Span",
    "SpanAssembler",
    "SpanForest",
    "SpanTree",
    "aggregate_hops",
    "build_control_root",
    "build_span_tree",
    "chrome_trace_dict",
    "chrome_trace_json",
    "critical_path",
    "flag_anomalies",
    "hop_name",
    "otlp_dict",
    "otlp_json",
    "segments_from_forest",
    "span_tree_text",
    "timeline_text",
]
