"""Reconstruct per-packet span trees from collected trace records.

This is the analysis-side counterpart of the paper's raw data collector
(§III-C/D): the database holds flat rows indexed by trace ID; this
module folds them back into the shape the packet actually travelled --
the Fig. 9/11 latency decomposition expressed as a span tree instead of
a bar chart.

For one trace ID the algorithm is:

1. pull the trace's rows (already ordered by the clock-sync-corrected
   master timestamps -- ``TraceDB.insert`` applied each node's Cristian
   offset at ingest);
2. keep the earliest observation per tracepoint label (duplicates are
   counted, not folded -- matching ``TraceDB.trace_ids_at``);
3. group contiguous runs of records on the same node into ``device``
   spans, consecutive tracepoint pairs inside a run into ``hop`` spans,
   and the gap between two nodes' runs into a ``wire`` span.

The resulting top-level children partition the packet span exactly, so
per-device durations telescope to the end-to-end latency with zero
error.  Traces seen at fewer than two tracepoints cannot form a span
and are counted as orphan records, as are duplicate observations.

Control-plane spans (dispatcher -> agent deploys, agent -> collector
batch shipments) are assembled from the event logs those components
keep; see :func:`build_control_root`.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.tracedb import TraceDB, TraceRow
from repro.obs import contract as obs_contract
from repro.obs.registry import MetricsRegistry
from repro.tracing.spans import Span, SpanForest, SpanTree


def hop_name(from_label: str, to_label: str) -> str:
    """The canonical leaf-segment name; shared with SegmentLatency."""
    return f"{from_label} -> {to_label}"


def _dedup_rows(rows: Sequence[TraceRow]) -> Tuple[List[TraceRow], int]:
    """Earliest row per tracepoint label; returns (kept, duplicates)."""
    seen = set()
    kept: List[TraceRow] = []
    duplicates = 0
    for row in rows:
        if row.label in seen:
            duplicates += 1
            continue
        seen.add(row.label)
        kept.append(row)
    return kept, duplicates


def build_span_tree(
    db: TraceDB,
    trace_id: int,
    chain: Optional[Sequence[str]] = None,
) -> Optional[SpanTree]:
    """One packet's span tree, or ``None`` when it cannot form a span
    (zero or one usable record).  ``chain`` restricts the tracepoints
    considered (records at other labels are ignored, not orphaned)."""
    rows = db.rows_for_trace(trace_id)
    if chain is not None:
        wanted = set(chain)
        rows = [row for row in rows if row.label in wanted]
    rows, duplicates = _dedup_rows(rows)
    if len(rows) < 2:
        return None

    root = Span(
        name=f"packet:0x{trace_id:08x}",
        kind="packet",
        node=rows[0].node,
        start_ns=rows[0].timestamp_ns,
        end_ns=rows[-1].timestamp_ns,
        attributes={
            "trace_id": trace_id,
            "records": len(rows),
            "packet_len": rows[0].packet_len,
        },
    )

    # Contiguous same-node runs become device spans.
    runs: List[List[TraceRow]] = [[rows[0]]]
    for row in rows[1:]:
        if row.node == runs[-1][-1].node:
            runs[-1].append(row)
        else:
            runs.append([row])

    for index, run in enumerate(runs):
        if index > 0:
            previous = runs[index - 1][-1]
            root.add_child(
                Span(
                    name=hop_name(previous.label, run[0].label),
                    kind="wire",
                    node=f"{previous.node} -> {run[0].node}",
                    start_ns=previous.timestamp_ns,
                    end_ns=run[0].timestamp_ns,
                    attributes={
                        "from_node": previous.node,
                        "to_node": run[0].node,
                    },
                )
            )
        device = root.add_child(
            Span(
                name=f"device:{run[0].node}",
                kind="device",
                node=run[0].node,
                start_ns=run[0].timestamp_ns,
                end_ns=run[-1].timestamp_ns,
                attributes={
                    "records": len(run),
                    # The Cristian correction this node's timestamps got.
                    "clock_offset_ns": db.clock_skew(run[0].node),
                },
            )
        )
        for row_a, row_b in zip(run, run[1:]):
            device.add_child(
                Span(
                    name=hop_name(row_a.label, row_b.label),
                    kind="hop",
                    node=row_a.node,
                    start_ns=row_a.timestamp_ns,
                    end_ns=row_b.timestamp_ns,
                    attributes={"cpu": row_a.cpu},
                )
            )

    return SpanTree(
        trace_id=trace_id,
        root=root,
        record_count=len(rows) + duplicates,
        duplicate_records=duplicates,
    )


def build_rpc_forest(
    db: TraceDB,
    links: "Mapping[int, Tuple[int, ...]]",
    chain: Optional[Sequence[str]] = None,
) -> SpanForest:
    """Cross-service span forest from trace rows plus causality links.

    ``links`` maps a child trace ID to the parent trace IDs read back
    from its wire embed (see ``ServiceDeployment.links``).  Each *root*
    request -- an observed trace ID with no observed parent -- becomes
    one tree whose spans are ``rpc`` wrappers: the wrapper holds the
    packet's own span tree (when it formed one) plus the ``rpc``
    wrappers of its child RPCs, so Perfetto/OTLP render the whole
    multi-service request under a single track.  Cycles (impossible
    without trace-ID collisions) and repeated links are ignored; the
    primary (first) parent places a multi-parent fan-in child.
    """
    parent_of = {child: parents[0] for child, parents in links.items() if parents}
    observed = list(db.trace_ids())
    known = set(observed)
    children: dict = {}
    for child, parent in parent_of.items():
        if child in known:
            children.setdefault(parent, []).append(child)

    def first_ts(tid: int) -> int:
        rows = db.rows_for_trace(tid)
        return rows[0].timestamp_ns if rows else 0

    for kids in children.values():
        kids.sort(key=lambda tid: (first_ts(tid), tid))

    visited = set()

    def assemble(tid: int) -> Optional[Tuple[Span, int]]:
        if tid in visited:
            return None
        visited.add(tid)
        rows = db.rows_for_trace(tid)
        packet_tree = build_span_tree(db, tid, chain=chain)
        child_spans: List[Span] = []
        records = len(rows)
        for kid in children.get(tid, ()):
            built = assemble(kid)
            if built is not None:
                child_spans.append(built[0])
                records += built[1]
        bounds = [row.timestamp_ns for row in rows]
        bounds.extend(span.start_ns for span in child_spans)
        bounds.extend(span.end_ns for span in child_spans)
        if packet_tree is not None:
            bounds.extend((packet_tree.root.start_ns, packet_tree.root.end_ns))
        if not bounds:
            return None
        span = Span(
            name=f"rpc:0x{tid:08x}",
            kind="rpc",
            node=rows[0].node if rows else "",
            start_ns=min(bounds),
            end_ns=max(bounds),
            attributes={
                "trace_id": tid,
                "parent_id": parent_of.get(tid, 0),
                "rpc_children": len(child_spans),
            },
        )
        if packet_tree is not None:
            span.add_child(packet_tree.root)
        for child in child_spans:
            span.add_child(child)
        return span, records

    forest = SpanForest()
    for tid in observed:
        if parent_of.get(tid) in known:
            continue  # placed under its parent's tree
        built = assemble(tid)
        if built is None:
            continue
        span, records = built
        forest.trees.append(
            SpanTree(trace_id=tid, root=span, record_count=records)
        )
    return forest


def build_control_root(
    deploy_spans: Iterable[Tuple[int, int, str]],
    ship_spans: Iterable[Tuple[int, int, str, int]],
) -> Optional[Span]:
    """The control-plane track: dispatcher -> agent deploy intervals and
    agent -> collector batch shipments, under one synthetic root."""
    children: List[Span] = []
    for start_ns, end_ns, node in deploy_spans:
        children.append(
            Span(
                name=f"deploy:{node}",
                kind="control",
                node=node,
                start_ns=start_ns,
                end_ns=end_ns,
                attributes={"phase": "dispatcher -> agent"},
            )
        )
    for start_ns, end_ns, node, records in ship_spans:
        children.append(
            Span(
                name=f"ship:{node}",
                kind="control",
                node=node,
                start_ns=start_ns,
                end_ns=end_ns,
                attributes={"phase": "agent -> collector", "records": records},
            )
        )
    if not children:
        return None
    children.sort(key=lambda span: (span.start_ns, span.name))
    root = Span(
        name="control-plane",
        kind="control",
        node="master",
        start_ns=min(span.start_ns for span in children),
        end_ns=max(span.end_ns for span in children),
    )
    root.children.extend(children)
    return root


class SpanAssembler:
    """Builds span forests from a :class:`TraceDB`, with observability.

    When a registry is supplied the assembler registers and drives the
    ``tracing`` stage of the metrics contract: trees built, spans
    emitted, orphan records, and anomalous spans flagged.
    """

    def __init__(self, db: TraceDB, registry: Optional[MetricsRegistry] = None):
        self.db = db
        self.trees_built = 0
        self.spans_built = 0
        self.orphan_records = 0
        self._m_trees = self._m_spans = self._m_orphans = self._m_anomalies = None
        if registry is not None:
            self._m_trees = registry.register_spec(obs_contract.SPAN_TREES)
            self._m_spans = registry.register_spec(obs_contract.SPAN_SPANS)
            self._m_orphans = registry.register_spec(obs_contract.SPAN_ORPHANS)
            self._m_anomalies = registry.register_spec(obs_contract.SPAN_ANOMALIES)

    def tree(
        self, trace_id: int, chain: Optional[Sequence[str]] = None
    ) -> Optional[SpanTree]:
        """One packet's tree (counted like a one-tree forest)."""
        tree = build_span_tree(self.db, trace_id, chain=chain)
        if tree is None:
            orphaned = self.db.record_count_for_trace(trace_id)
            self.orphan_records += orphaned
            if self._m_orphans is not None and orphaned:
                self._m_orphans.inc(orphaned)
            return None
        self._count_tree(tree)
        return tree

    def forest(
        self,
        trace_ids: Optional[Iterable[int]] = None,
        chain: Optional[Sequence[str]] = None,
        complete_only: bool = False,
        control_root: Optional[Span] = None,
    ) -> SpanForest:
        """Assemble every requested trace (default: all trace IDs in the
        database, in first-seen order).  With ``complete_only`` and a
        chain, traces missing a tracepoint are skipped as incomplete
        (the §III-C data-cleaning step) and counted as orphans."""
        if trace_ids is None:
            trace_ids = self.db.trace_ids()
        complete = None
        if complete_only and chain is not None:
            complete = set(self.db.complete_traces(chain))
        forest = SpanForest(control_root=control_root)
        for trace_id in trace_ids:
            if complete is not None and trace_id not in complete:
                forest.orphan_records += self.db.record_count_for_trace(trace_id)
                continue
            tree = build_span_tree(self.db, trace_id, chain=chain)
            if tree is None:
                forest.orphan_records += self.db.record_count_for_trace(trace_id)
                continue
            forest.trees.append(tree)
            forest.orphan_records += tree.duplicate_records
        for tree in forest.trees:
            self._count_tree(tree)
        self.orphan_records += forest.orphan_records
        if self._m_orphans is not None and forest.orphan_records:
            self._m_orphans.inc(forest.orphan_records)
        return forest

    def rpc_forest(
        self,
        links: Mapping[int, Tuple[int, ...]],
        chain: Optional[Sequence[str]] = None,
    ) -> SpanForest:
        """Cross-service forest (see :func:`build_rpc_forest`), counted
        into the ``tracing`` stage metrics like any other assembly."""
        forest = build_rpc_forest(self.db, links, chain=chain)
        for tree in forest.trees:
            self._count_tree(tree)
        return forest

    def anomalies(self, forest: SpanForest, factor: float = 3.0):
        """Anomalous spans (see :func:`repro.tracing.critical.flag_anomalies`),
        counted into ``vnt_span_anomalous_total``."""
        from repro.tracing.critical import flag_anomalies

        found = flag_anomalies(forest, factor=factor)
        if self._m_anomalies is not None and found:
            self._m_anomalies.inc(len(found))
        return found

    def _count_tree(self, tree: SpanTree) -> None:
        spans = len(tree.spans())
        self.trees_built += 1
        self.spans_built += spans
        if self._m_trees is not None:
            self._m_trees.inc()
            self._m_spans.inc(spans)
