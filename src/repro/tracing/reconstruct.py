"""Reconstruct per-packet span trees from collected trace records.

This is the analysis-side counterpart of the paper's raw data collector
(§III-C/D): the database holds flat rows indexed by trace ID; this
module folds them back into the shape the packet actually travelled --
the Fig. 9/11 latency decomposition expressed as a span tree instead of
a bar chart.

For one trace ID the algorithm is:

1. pull the trace's rows (already ordered by the clock-sync-corrected
   master timestamps -- ``TraceDB.insert`` applied each node's Cristian
   offset at ingest);
2. keep the earliest observation per tracepoint label (duplicates are
   counted, not folded -- matching ``TraceDB.trace_ids_at``);
3. group contiguous runs of records on the same node into ``device``
   spans, consecutive tracepoint pairs inside a run into ``hop`` spans,
   and the gap between two nodes' runs into a ``wire`` span.

The resulting top-level children partition the packet span exactly, so
per-device durations telescope to the end-to-end latency with zero
error.  Traces seen at fewer than two tracepoints cannot form a span
and are counted as orphan records, as are duplicate observations.

Two implementations of that algorithm live here (docs/TIMELINES.md,
"Reconstruction pipeline"):

* the **batch pipeline** -- :class:`SpanAssembler` rides
  ``TraceDB.trace_group_rows``, the columnar group-by kernel that
  buckets every requested trace's rows as plain sorted tuples (no
  ``TraceRow`` objects), then bulk-builds each tree with a validated
  fast-path ``Span`` constructor.  Full-database assemblies are
  memoized keyed on ``TraceDB.generation``: repeated
  ``span_forest()`` / ``rpc_forest()`` calls on an unchanged database
  are O(1) cache hits.
* the **per-row oracle** -- :func:`build_span_tree`,
  :func:`build_rpc_forest`, and :func:`legacy_forest` keep the original
  row-at-a-time implementation; the differential suite
  (tests/test_tracing_batch.py) proves the batch pipeline's Chrome /
  OTLP / text exports byte-identical to it on every scenario.

Control-plane spans (dispatcher -> agent deploys, agent -> collector
batch shipments) are assembled from the event logs those components
keep; see :func:`build_control_root`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.tracedb import TraceDB, TraceRow
from repro.obs import contract as obs_contract
from repro.obs.registry import MetricsRegistry
from repro.tracing.spans import Span, SpanForest, SpanTree


def hop_name(from_label: str, to_label: str) -> str:
    """The canonical leaf-segment name; shared with SegmentLatency."""
    return f"{from_label} -> {to_label}"


def _dedup_rows(rows: Sequence[TraceRow]) -> Tuple[List[TraceRow], int]:
    """Earliest row per tracepoint label; returns (kept, duplicates)."""
    seen = set()
    kept: List[TraceRow] = []
    duplicates = 0
    for row in rows:
        if row.label in seen:
            duplicates += 1
            continue
        seen.add(row.label)
        kept.append(row)
    return kept, duplicates


def build_span_tree(
    db: TraceDB,
    trace_id: int,
    chain: Optional[Sequence[str]] = None,
) -> Optional[SpanTree]:
    """One packet's span tree, or ``None`` when it cannot form a span
    (zero or one usable record).  ``chain`` restricts the tracepoints
    considered (records at other labels are ignored, not orphaned).

    This is the per-row reference implementation, retained as the
    differential oracle for the batch pipeline (tests/test_tracing_batch.py
    byte-compares the exports of both on every scenario)."""
    rows = db.rows_for_trace(trace_id)
    if chain is not None:
        wanted = set(chain)
        rows = [row for row in rows if row.label in wanted]
    rows, duplicates = _dedup_rows(rows)
    if len(rows) < 2:
        return None

    root = Span(
        name=f"packet:0x{trace_id:08x}",
        kind="packet",
        node=rows[0].node,
        start_ns=rows[0].timestamp_ns,
        end_ns=rows[-1].timestamp_ns,
        attributes={
            "trace_id": trace_id,
            "records": len(rows),
            "packet_len": rows[0].packet_len,
        },
    )

    # Contiguous same-node runs become device spans.
    runs: List[List[TraceRow]] = [[rows[0]]]
    for row in rows[1:]:
        if row.node == runs[-1][-1].node:
            runs[-1].append(row)
        else:
            runs.append([row])

    for index, run in enumerate(runs):
        if index > 0:
            previous = runs[index - 1][-1]
            root.add_child(
                Span(
                    name=hop_name(previous.label, run[0].label),
                    kind="wire",
                    node=f"{previous.node} -> {run[0].node}",
                    start_ns=previous.timestamp_ns,
                    end_ns=run[0].timestamp_ns,
                    attributes={
                        "from_node": previous.node,
                        "to_node": run[0].node,
                    },
                )
            )
        device = root.add_child(
            Span(
                name=f"device:{run[0].node}",
                kind="device",
                node=run[0].node,
                start_ns=run[0].timestamp_ns,
                end_ns=run[-1].timestamp_ns,
                attributes={
                    "records": len(run),
                    # The Cristian correction this node's timestamps got.
                    "clock_offset_ns": db.clock_skew(run[0].node),
                },
            )
        )
        for row_a, row_b in zip(run, run[1:]):
            device.add_child(
                Span(
                    name=hop_name(row_a.label, row_b.label),
                    kind="hop",
                    node=row_a.node,
                    start_ns=row_a.timestamp_ns,
                    end_ns=row_b.timestamp_ns,
                    attributes={"cpu": row_a.cpu},
                )
            )

    return SpanTree(
        trace_id=trace_id,
        root=root,
        record_count=len(rows) + duplicates,
        duplicate_records=duplicates,
    )


def legacy_forest(
    db: TraceDB,
    trace_ids: Optional[Iterable[int]] = None,
    chain: Optional[Sequence[str]] = None,
    complete_only: bool = False,
    control_root: Optional[Span] = None,
) -> SpanForest:
    """The per-row forest loop :class:`SpanAssembler.forest` used to be:
    one :func:`build_span_tree` call per trace ID.  Kept (uncounted, no
    metrics) purely as the differential oracle the batch pipeline is
    byte-compared against."""
    if trace_ids is None:
        trace_ids = db.trace_ids()
    complete = None
    if complete_only and chain is not None:
        complete = set(db.complete_traces(chain))
    forest = SpanForest(control_root=control_root)
    for trace_id in trace_ids:
        if complete is not None and trace_id not in complete:
            forest.orphan_records += db.record_count_for_trace(trace_id)
            continue
        tree = build_span_tree(db, trace_id, chain=chain)
        if tree is None:
            forest.orphan_records += db.record_count_for_trace(trace_id)
            continue
        forest.trees.append(tree)
        forest.orphan_records += tree.duplicate_records
    return forest


def build_rpc_forest(
    db: TraceDB,
    links: "Mapping[int, Tuple[int, ...]]",
    chain: Optional[Sequence[str]] = None,
) -> SpanForest:
    """Cross-service span forest from trace rows plus causality links.

    ``links`` maps a child trace ID to the parent trace IDs read back
    from its wire embed (see ``ServiceDeployment.links``).  Each *root*
    request -- an observed trace ID with no observed parent -- becomes
    one tree whose spans are ``rpc`` wrappers: the wrapper holds the
    packet's own span tree (when it formed one) plus the ``rpc``
    wrappers of its child RPCs, so Perfetto/OTLP render the whole
    multi-service request under a single track.  Cycles (impossible
    without trace-ID collisions) and repeated links are ignored; the
    primary (first) parent places a multi-parent fan-in child.

    Like :func:`build_span_tree` this is the per-row oracle; the
    assembler's :meth:`SpanAssembler.rpc_forest` runs the vectorized
    equivalent and is byte-compared against this one.
    """
    parent_of = {child: parents[0] for child, parents in links.items() if parents}
    observed = list(db.trace_ids())
    known = set(observed)
    children: dict = {}
    for child, parent in parent_of.items():
        if child in known:
            children.setdefault(parent, []).append(child)

    def first_ts(tid: int) -> int:
        rows = db.rows_for_trace(tid)
        return rows[0].timestamp_ns if rows else 0

    for kids in children.values():
        kids.sort(key=lambda tid: (first_ts(tid), tid))

    visited = set()

    def assemble(tid: int) -> Optional[Tuple[Span, int]]:
        if tid in visited:
            return None
        visited.add(tid)
        rows = db.rows_for_trace(tid)
        packet_tree = build_span_tree(db, tid, chain=chain)
        child_spans: List[Span] = []
        records = len(rows)
        for kid in children.get(tid, ()):
            built = assemble(kid)
            if built is not None:
                child_spans.append(built[0])
                records += built[1]
        bounds = [row.timestamp_ns for row in rows]
        bounds.extend(span.start_ns for span in child_spans)
        bounds.extend(span.end_ns for span in child_spans)
        if packet_tree is not None:
            bounds.extend((packet_tree.root.start_ns, packet_tree.root.end_ns))
        if not bounds:
            return None
        span = Span(
            name=f"rpc:0x{tid:08x}",
            kind="rpc",
            node=rows[0].node if rows else "",
            start_ns=min(bounds),
            end_ns=max(bounds),
            attributes={
                "trace_id": tid,
                "parent_id": parent_of.get(tid, 0),
                "rpc_children": len(child_spans),
            },
        )
        if packet_tree is not None:
            span.add_child(packet_tree.root)
        for child in child_spans:
            span.add_child(child)
        return span, records

    forest = SpanForest()
    for tid in observed:
        if parent_of.get(tid) in known:
            continue  # placed under its parent's tree
        built = assemble(tid)
        if built is None:
            continue
        span, records = built
        forest.trees.append(
            SpanTree(trace_id=tid, root=span, record_count=records)
        )
    return forest


def build_control_root(
    deploy_spans: Iterable[Tuple[int, int, str]],
    ship_spans: Iterable[Tuple[int, int, str, int]],
) -> Optional[Span]:
    """The control-plane track: dispatcher -> agent deploy intervals and
    agent -> collector batch shipments, under one synthetic root."""
    children: List[Span] = []
    for start_ns, end_ns, node in deploy_spans:
        children.append(
            Span(
                name=f"deploy:{node}",
                kind="control",
                node=node,
                start_ns=start_ns,
                end_ns=end_ns,
                attributes={"phase": "dispatcher -> agent"},
            )
        )
    for start_ns, end_ns, node, records in ship_spans:
        children.append(
            Span(
                name=f"ship:{node}",
                kind="control",
                node=node,
                start_ns=start_ns,
                end_ns=end_ns,
                attributes={"phase": "agent -> collector", "records": records},
            )
        )
    if not children:
        return None
    children.sort(key=lambda span: (span.start_ns, span.name))
    root = Span(
        name="control-plane",
        kind="control",
        node="master",
        start_ns=min(span.start_ns for span in children),
        end_ns=max(span.end_ns for span in children),
    )
    root.children.extend(children)
    return root


# -- the columnar batch pipeline ----------------------------------------------

_SPAN_NEW = Span.__new__


def _make_span(name, kind, node, start_ns, end_ns, attributes) -> Span:
    """Span construction without dataclass ``__init__``/``__post_init__``.

    Only the batch pipeline calls this, and only with invariants the
    kernel already guarantees: timestamps come out of a sorted group
    (``end_ns >= start_ns`` by construction) and every kind is one of
    ours -- so the validation the oracle path runs would be redundant
    here, and skipping it roughly halves per-span build cost."""
    span = _SPAN_NEW(Span)
    span.name = name
    span.kind = kind
    span.node = node
    span.start_ns = start_ns
    span.end_ns = end_ns
    span.children = []
    span.attributes = attributes
    return span


# Hop/wire/device names recur for every trace of a flow (same labels,
# same nodes), so format each distinct one once.  Keyed by the exact
# string pair/node; bounded in practice by chain length x node count.
_PAIR_NAMES: Dict[Tuple[str, str], str] = {}
_DEVICE_NAMES: Dict[str, str] = {}


def _assemble_tree(trace_id, rows, clock_skew) -> Optional[SpanTree]:
    """One tree from a kernel row group (``TraceDB.trace_group_rows``
    tuples, already sorted, already chain-filtered by the caller).
    Mirrors :func:`build_span_tree` exactly; returns ``None`` when the
    trace cannot form a span.  The built tree carries ``_span_count``
    so nothing downstream needs to re-walk it."""
    # Earliest observation per label wins; duplicates are counted.
    seen = set()
    add_seen = seen.add
    kept = []
    keep = kept.append
    duplicates = 0
    for row in rows:
        label = row[3]
        if label in seen:
            duplicates += 1
        else:
            add_seen(label)
            keep(row)
    n = len(kept)
    if n < 2:
        return None

    first = kept[0]
    root = _make_span(
        f"packet:0x{trace_id:08x}",
        "packet",
        first[2],
        first[0],
        kept[-1][0],
        {"trace_id": trace_id, "records": n, "packet_len": first[5]},
    )
    children = root.children
    spans = 1
    run_start = 0
    prev_node = first[2]
    pair_names = _PAIR_NAMES
    device_names = _DEVICE_NAMES
    for i in range(1, n + 1):
        if i < n and kept[i][2] == prev_node:
            continue
        # Close the contiguous same-node run kept[run_start:i].
        run_first = kept[run_start]
        node = run_first[2]
        if run_start > 0:
            before = kept[run_start - 1]
            name_key = (before[3], run_first[3])
            name = pair_names.get(name_key)
            if name is None:
                name = pair_names[name_key] = hop_name(*name_key)
            wire_key = (before[2], node)
            wire_node = pair_names.get(wire_key)
            if wire_node is None:
                wire_node = pair_names[wire_key] = f"{before[2]} -> {node}"
            children.append(
                _make_span(
                    name,
                    "wire",
                    wire_node,
                    before[0],
                    run_first[0],
                    {"from_node": before[2], "to_node": node},
                )
            )
            spans += 1
        device_name = device_names.get(node)
        if device_name is None:
            device_name = device_names[node] = f"device:{node}"
        device = _make_span(
            device_name,
            "device",
            node,
            run_first[0],
            kept[i - 1][0],
            {"records": i - run_start, "clock_offset_ns": clock_skew(node)},
        )
        children.append(device)
        spans += 1
        hops = device.children
        for j in range(run_start, i - 1):
            row_a = kept[j]
            row_b = kept[j + 1]
            name_key = (row_a[3], row_b[3])
            name = pair_names.get(name_key)
            if name is None:
                name = pair_names[name_key] = hop_name(*name_key)
            hops.append(
                _make_span(
                    name,
                    "hop",
                    row_a[2],
                    row_a[0],
                    row_b[0],
                    {"cpu": row_a[4]},
                )
            )
        spans += i - 1 - run_start
        if i < n:
            run_start = i
            prev_node = kept[i][2]

    tree = SpanTree(
        trace_id=trace_id,
        root=root,
        record_count=n + duplicates,
        duplicate_records=duplicates,
    )
    tree._span_count = spans
    return tree


class SpanAssembler:
    """Builds span forests from a :class:`TraceDB`, with observability.

    Assembly runs the columnar batch pipeline: one
    ``TraceDB.trace_group_rows`` group-by over the live columns, one
    :func:`_assemble_tree` per trace group.  Full-database forests
    (``trace_ids=None``) and RPC forests are memoized keyed on
    ``TraceDB.generation`` plus the request shape (chain,
    completeness filter, links signature); any database mutation bumps
    the generation and invalidates the whole memo.  Cache hits return a
    fresh :class:`SpanForest` sharing the immutable trees -- they count
    as ``forest_cache_hits``, not as trees built (nothing was built).

    When a registry is supplied the assembler registers and drives the
    ``tracing`` stage of the metrics contract: trees built, spans
    emitted, orphan records, anomalous spans, forest rebuilds / cache
    hits, and trace groups assembled.
    """

    def __init__(self, db: TraceDB, registry: Optional[MetricsRegistry] = None):
        self.db = db
        # Oracle mode: a database without the columnar group-by kernel
        # (e.g. the legacy row store the PR 5 differential suite keeps)
        # assembles through the per-row reference path instead.
        self._batch = hasattr(db, "trace_group_rows")
        self.trees_built = 0
        self.spans_built = 0
        self.orphan_records = 0
        self.forest_rebuilds = 0
        self.forest_cache_hits = 0
        self.groups_assembled = 0
        # key -> (trees tuple, orphan_records); valid only while
        # self._cache_generation == db.generation.
        self._cache: Dict[tuple, Tuple[Tuple[SpanTree, ...], int]] = {}
        self._cache_generation: Optional[int] = None
        self._m_trees = self._m_spans = self._m_orphans = self._m_anomalies = None
        self._m_rebuilds = self._m_hits = self._m_groups = None
        if registry is not None:
            self._m_trees = registry.register_spec(obs_contract.SPAN_TREES)
            self._m_spans = registry.register_spec(obs_contract.SPAN_SPANS)
            self._m_orphans = registry.register_spec(obs_contract.SPAN_ORPHANS)
            self._m_anomalies = registry.register_spec(obs_contract.SPAN_ANOMALIES)
            self._m_rebuilds = registry.register_spec(
                obs_contract.SPAN_FOREST_REBUILDS
            )
            self._m_hits = registry.register_spec(
                obs_contract.SPAN_FOREST_CACHE_HITS
            )
            self._m_groups = registry.register_spec(
                obs_contract.SPAN_GROUPS_ASSEMBLED
            )

    # -- memo cache ----------------------------------------------------------

    def _cache_get(self, key: Optional[tuple]):
        generation = getattr(self.db, "generation", None)
        if key is None or generation is None or self._cache_generation != generation:
            return None
        entry = self._cache.get(key)
        if entry is None:
            return None
        self.forest_cache_hits += 1
        if self._m_hits is not None:
            self._m_hits.inc()
        return entry

    def _cache_put(self, key: Optional[tuple], trees: Sequence[SpanTree], orphans: int) -> None:
        generation = getattr(self.db, "generation", None)
        if key is None or generation is None:
            return
        if self._cache_generation != generation:
            self._cache.clear()
            self._cache_generation = generation
        self._cache[key] = (tuple(trees), orphans)

    def _note_groups(self, count: int) -> None:
        self.groups_assembled += count
        if self._m_groups is not None and count:
            self._m_groups.inc(count)

    def _note_rebuild(self) -> None:
        self.forest_rebuilds += 1
        if self._m_rebuilds is not None:
            self._m_rebuilds.inc()

    def _count_trees(self, trees: Sequence[SpanTree], orphans: int) -> None:
        spans = sum(
            tree._span_count if tree._span_count is not None else len(tree.spans())
            for tree in trees
        )
        self.trees_built += len(trees)
        self.spans_built += spans
        self.orphan_records += orphans
        if self._m_trees is not None and trees:
            self._m_trees.inc(len(trees))
            self._m_spans.inc(spans)
        if self._m_orphans is not None and orphans:
            self._m_orphans.inc(orphans)

    # -- assembly ------------------------------------------------------------

    def tree(
        self, trace_id: int, chain: Optional[Sequence[str]] = None
    ) -> Optional[SpanTree]:
        """One packet's tree (counted like a one-tree forest).  Single
        lookups index the live columns directly (no snapshot pass)."""
        if self._batch:
            ((_, rows),) = self.db.trace_group_rows([trace_id], snapshot=False)
            if chain is not None:
                wanted = set(chain)
                rows = [row for row in rows if row[3] in wanted]
            self._note_groups(1)
            tree = _assemble_tree(trace_id, rows, self.db.clock_skew)
        else:  # oracle mode (row-store database)
            tree = build_span_tree(self.db, trace_id, chain=chain)
        if tree is None:
            orphaned = self.db.record_count_for_trace(trace_id)
            self.orphan_records += orphaned
            if self._m_orphans is not None and orphaned:
                self._m_orphans.inc(orphaned)
            return None
        self._count_trees((tree,), 0)
        return tree

    def forest(
        self,
        trace_ids: Optional[Iterable[int]] = None,
        chain: Optional[Sequence[str]] = None,
        complete_only: bool = False,
        control_root: Optional[Span] = None,
    ) -> SpanForest:
        """Assemble every requested trace (default: all trace IDs in the
        database, in first-seen order).  With ``complete_only`` and a
        chain, traces missing a tracepoint are skipped as incomplete
        (the §III-C data-cleaning step) and counted as orphans.

        Default (full-database) requests are memoized per generation;
        explicit ``trace_ids`` requests always assemble."""
        filtering = complete_only and chain is not None
        key = None
        if trace_ids is None:
            key = ("forest", None if chain is None else tuple(chain), filtering)
            cached = self._cache_get(key)
            if cached is not None:
                trees, orphans = cached
                return SpanForest(
                    trees=list(trees),
                    orphan_records=orphans,
                    control_root=control_root,
                )
        if not self._batch:  # oracle mode (row-store database)
            forest = legacy_forest(
                self.db, trace_ids, chain, complete_only, control_root
            )
            self._note_rebuild()
            self._count_trees(forest.trees, forest.orphan_records)
            self._cache_put(key, forest.trees, forest.orphan_records)
            return forest
        ids = self.db.trace_ids() if trace_ids is None else list(trace_ids)
        orphans = 0
        if filtering:
            complete = set(self.db.complete_traces(chain))
            wanted_ids = []
            for trace_id in ids:
                if trace_id in complete:
                    wanted_ids.append(trace_id)
                else:
                    orphans += self.db.record_count_for_trace(trace_id)
        else:
            wanted_ids = ids
        wanted = None if chain is None else set(chain)
        if wanted is not None and wanted.issuperset(self.db.tables()):
            wanted = None  # chain covers every label: filter is a no-op
        clock_skew = self.db.clock_skew
        # Snapshotting columns costs O(table) once; worth it unless the
        # request touches only a handful of traces.
        groups = self.db.trace_group_rows(
            wanted_ids, snapshot=trace_ids is None or len(wanted_ids) > 32
        )
        trees: List[SpanTree] = []
        for trace_id, rows in groups:
            if wanted is not None:
                rows = [row for row in rows if row[3] in wanted]
            tree = _assemble_tree(trace_id, rows, clock_skew)
            if tree is None:
                orphans += self.db.record_count_for_trace(trace_id)
                continue
            trees.append(tree)
            orphans += tree.duplicate_records
        self._note_rebuild()
        self._note_groups(len(groups))
        self._count_trees(trees, orphans)
        self._cache_put(key, trees, orphans)
        return SpanForest(
            trees=trees, orphan_records=orphans, control_root=control_root
        )

    def rpc_forest(
        self,
        links: Mapping[int, Tuple[int, ...]],
        chain: Optional[Sequence[str]] = None,
    ) -> SpanForest:
        """Cross-service forest (the vectorized equivalent of
        :func:`build_rpc_forest`), counted into the ``tracing`` stage
        metrics like any other assembly and memoized per generation
        (the cache key includes the links signature, so changed links
        rebuild even on an unchanged database)."""
        key = (
            "rpc",
            tuple(sorted((child, tuple(parents)) for child, parents in links.items())),
            None if chain is None else tuple(chain),
        )
        cached = self._cache_get(key)
        if cached is not None:
            trees, orphans = cached
            return SpanForest(trees=list(trees), orphan_records=orphans)
        if not self._batch:  # oracle mode (row-store database)
            forest = build_rpc_forest(self.db, links, chain=chain)
            self._note_rebuild()
            self._count_trees(forest.trees, 0)
            self._cache_put(key, forest.trees, 0)
            return forest
        trees, groups = self._build_rpc_trees(links, chain)
        self._note_rebuild()
        self._note_groups(groups)
        self._count_trees(trees, 0)
        self._cache_put(key, trees, 0)
        return SpanForest(trees=list(trees))

    def _build_rpc_trees(
        self,
        links: Mapping[int, Tuple[int, ...]],
        chain: Optional[Sequence[str]],
    ) -> Tuple[List[SpanTree], int]:
        """Mirror of :func:`build_rpc_forest` over kernel row groups:
        one columnar group-by for the whole database, then the same
        parent/child recursion without re-materializing rows per trace."""
        db = self.db
        parent_of = {child: parents[0] for child, parents in links.items() if parents}
        observed = db.trace_ids()
        known = set(observed)
        groups = dict(db.trace_group_rows())
        children: Dict[int, List[int]] = {}
        for child, parent in parent_of.items():
            if child in known:
                children.setdefault(parent, []).append(child)

        def first_ts(tid: int) -> int:
            rows = groups.get(tid)
            return rows[0][0] if rows else 0

        for kids in children.values():
            kids.sort(key=lambda tid: (first_ts(tid), tid))

        wanted = None if chain is None else set(chain)
        clock_skew = db.clock_skew
        visited = set()

        def assemble(tid: int) -> Optional[Tuple[Span, int, int]]:
            if tid in visited:
                return None
            visited.add(tid)
            rows = groups.get(tid, [])
            packet_rows = (
                rows if wanted is None else [row for row in rows if row[3] in wanted]
            )
            packet_tree = _assemble_tree(tid, packet_rows, clock_skew)
            child_spans: List[Span] = []
            records = len(rows)
            spans = 1  # this rpc wrapper
            for kid in children.get(tid, ()):
                built = assemble(kid)
                if built is not None:
                    child_spans.append(built[0])
                    records += built[1]
                    spans += built[2]
            start = end = None
            if rows:  # sorted: first/last row bound the observations
                start = rows[0][0]
                end = rows[-1][0]
            for span in child_spans:
                if start is None or span.start_ns < start:
                    start = span.start_ns
                if end is None or span.end_ns > end:
                    end = span.end_ns
            if packet_tree is not None:
                root = packet_tree.root
                if start is None or root.start_ns < start:
                    start = root.start_ns
                if end is None or root.end_ns > end:
                    end = root.end_ns
            if start is None:
                return None
            span = _make_span(
                f"rpc:0x{tid:08x}",
                "rpc",
                rows[0][2] if rows else "",
                start,
                end,
                {
                    "trace_id": tid,
                    "parent_id": parent_of.get(tid, 0),
                    "rpc_children": len(child_spans),
                },
            )
            if packet_tree is not None:
                span.children.append(packet_tree.root)
                spans += packet_tree._span_count
            span.children.extend(child_spans)
            return span, records, spans

        trees: List[SpanTree] = []
        for tid in observed:
            if parent_of.get(tid) in known:
                continue  # placed under its parent's tree
            built = assemble(tid)
            if built is None:
                continue
            span, records, spans = built
            tree = SpanTree(trace_id=tid, root=span, record_count=records)
            tree._span_count = spans
            trees.append(tree)
        return trees, len(visited)

    def anomalies(self, forest: SpanForest, factor: float = 3.0):
        """Anomalous spans (see :func:`repro.tracing.critical.flag_anomalies`),
        counted into ``vnt_span_anomalous_total``."""
        from repro.tracing.critical import flag_anomalies

        found = flag_anomalies(forest, factor=factor)
        if self._m_anomalies is not None and found:
            self._m_anomalies.inc(len(found))
        return found
