"""The span model: per-packet trace trees.

The paper's collector stores flat rows; distributed-tracing systems
store *spans* -- named, timed intervals arranged in a parent/child tree
per trace.  Nahida (arXiv:2311.09032) shows that eBPF in-band trace IDs
map naturally onto that model, and our 32-bit per-packet IDs are
exactly such trace IDs: every packet becomes one trace, every device it
crosses becomes a child span, every tracepoint-to-tracepoint hop a
grandchild.

A :class:`Span` is a plain timed interval on the *master-aligned*
clock (the TraceDB applies each node's Cristian offset before spans are
built, so cross-node spans subtract directly).  Kinds:

========= ==========================================================
kind      meaning
========= ==========================================================
packet    the root: first to last observation of one trace ID
device    a contiguous run of records on one node (per-device time)
hop       one tracepoint pair inside a device
wire      the gap between the last record on one node and the first
          on the next (transmission + anything untraced in between)
control   control-plane activity (deploy, batch shipping)
rpc       one RPC in a cross-service request tree: wraps the packet
          tree of its own trace ID and nests its child RPCs
          (docs/SERVICES.md)
========= ==========================================================

Durations are integer nanoseconds and **telescoping**: the top-level
children of a packet span partition it exactly, so their durations sum
to the end-to-end latency with no rounding -- the invariant the
timeline acceptance test pins down to the nanosecond.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

SPAN_KINDS = ("packet", "device", "hop", "wire", "control", "rpc")


@dataclass
class Span:
    """One named, timed interval in a trace tree."""

    name: str
    kind: str
    node: str
    start_ns: int
    end_ns: int
    children: List["Span"] = field(default_factory=list)
    attributes: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in SPAN_KINDS:
            raise ValueError(f"unknown span kind {self.kind!r}")
        if self.end_ns < self.start_ns:
            raise ValueError(
                f"span {self.name!r} ends before it starts "
                f"({self.end_ns} < {self.start_ns})"
            )

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def add_child(self, child: "Span") -> "Span":
        self.children.append(child)
        return child

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal (self first).  Iterative: an explicit
        stack instead of nested generator delegation, so walking a
        forest costs one frame, not one per tree level."""
        stack = [self]
        pop = stack.pop
        while stack:
            span = pop()
            yield span
            children = span.children
            if children:
                stack.extend(reversed(children))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.kind}:{self.name!r} {self.start_ns}..{self.end_ns} "
            f"children={len(self.children)}>"
        )


@dataclass
class SpanTree:
    """One packet's reconstructed trace: a root span plus metadata."""

    trace_id: int
    root: Span
    record_count: int
    duplicate_records: int = 0

    # Span count memo (not a dataclass field): the batch assembler knows
    # the count at build time and stamps it here so forest-wide totals
    # never re-walk trees.  ``None`` (hand-built trees) falls back to a
    # walk; stays valid because trees are never mutated after assembly.
    _span_count = None

    @property
    def start_ns(self) -> int:
        return self.root.start_ns

    @property
    def end_ns(self) -> int:
        return self.root.end_ns

    @property
    def duration_ns(self) -> int:
        return self.root.duration_ns

    def spans(self) -> List[Span]:
        """Every span in the tree, pre-order."""
        return list(self.root.walk())

    def hop_spans(self) -> List[Span]:
        """The leaf segments (hops and wires) in timestamp order."""
        return [s for s in self.root.walk() if s.kind in ("hop", "wire")]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SpanTree 0x{self.trace_id:08x} {self.duration_ns}ns "
            f"spans={len(self.spans())}>"
        )


@dataclass
class SpanForest:
    """All span trees reconstructed for one flow, plus build statistics.

    ``orphan_records`` counts rows that could not be folded into any
    tree: traces observed at a single tracepoint only (nothing to pair
    with) and duplicate observations at a tracepoint already folded
    (the first row wins, per ``TraceDB.trace_ids_at`` semantics).
    """

    trees: List[SpanTree] = field(default_factory=list)
    orphan_records: int = 0
    control_root: Optional[Span] = None

    def __len__(self) -> int:
        return len(self.trees)

    def __iter__(self) -> Iterator[SpanTree]:
        return iter(self.trees)

    def span_count(self) -> int:
        return sum(
            tree._span_count if tree._span_count is not None else len(tree.spans())
            for tree in self.trees
        )

    def tree_for(self, trace_id: int) -> Optional[SpanTree]:
        for tree in self.trees:
            if tree.trace_id == trace_id:
                return tree
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SpanForest trees={len(self.trees)} spans={self.span_count()} "
            f"orphans={self.orphan_records}>"
        )
