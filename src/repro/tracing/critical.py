"""Critical-path analysis over span forests.

Once every packet is a span tree, "where did this flow spend its time"
becomes tree arithmetic:

* :func:`critical_path` -- the longest root-to-leaf chain of one tree
  (at each level, the child contributing the most time);
* :func:`aggregate_hops` -- per-hop latency distributions across a
  whole flow (p50/p95/p99, the Fig. 9a decomposition generalized);
* :func:`flag_anomalies` -- spans that took more than N x the flow's
  median for that hop (the "one packet hit a full queue" detector);
* :func:`segments_from_forest` -- adapt a forest back into the
  :class:`~repro.core.metrics.SegmentLatency` shape so the existing
  report tables render from spans instead of ad-hoc row grouping.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence, Tuple

from repro.core.metrics import SegmentLatency
from repro.tracing.reconstruct import hop_name
from repro.tracing.spans import Span, SpanForest, SpanTree
from repro.workloads.stats import percentile


class HopStats(NamedTuple):
    """Latency distribution of one hop across a flow."""

    name: str
    kind: str  # "hop" (same node) or "wire" (cross node)
    count: int
    avg_ns: float
    p50_ns: int
    p95_ns: int
    p99_ns: int
    max_ns: int


class Anomaly(NamedTuple):
    """One span that exceeded ``factor`` x its hop's flow median."""

    trace_id: int
    name: str
    duration_ns: int
    median_ns: float
    ratio: float


def critical_path(tree: SpanTree) -> List[Span]:
    """Root-to-leaf chain following the slowest child at each level.

    Ties break toward the earlier child, so the result is deterministic
    for any input ordering."""
    path = [tree.root]
    span = tree.root
    while span.children:
        span = max(span.children, key=lambda child: child.duration_ns)
        path.append(span)
    return path


def _leaf_spans(forest: SpanForest) -> Dict[str, List[Tuple[SpanTree, Span]]]:
    """Every leaf segment as ``(tree, span)``, grouped by hop name in
    first-appearance order (dicts preserve insertion order); within a
    group, pairs appear in (forest order, walk order).  One pass over
    the forest, shared by the aggregation and the anomaly detector --
    the detector used to re-walk every tree once per hop name."""
    groups: Dict[str, List[Tuple[SpanTree, Span]]] = {}
    get = groups.get
    for tree in forest:
        # Inlined pre-order walk: same visit order as Span.walk(), minus
        # the generator overhead (this runs once per span in the forest).
        stack = [tree.root]
        pop = stack.pop
        while stack:
            span = pop()
            kind = span.kind
            if kind == "hop" or kind == "wire":
                bucket = get(span.name)
                if bucket is None:
                    bucket = groups[span.name] = []
                bucket.append((tree, span))
            children = span.children
            if children:
                stack.extend(reversed(children))
    return groups


def _leaf_durations(forest: SpanForest):
    """Durations and kind of every leaf segment, keyed by hop name in
    first-appearance order (dicts preserve insertion order)."""
    groups = _leaf_spans(forest)
    durations = {
        name: [span.duration_ns for _, span in pairs]
        for name, pairs in groups.items()
    }
    kinds = {name: pairs[0][1].kind for name, pairs in groups.items()}
    return durations, kinds


def aggregate_hops(forest: SpanForest) -> List[HopStats]:
    """Per-hop latency summaries across the forest, in path order."""
    durations, kinds = _leaf_durations(forest)
    stats = []
    for name, values in durations.items():
        ordered = sorted(values)
        stats.append(
            HopStats(
                name=name,
                kind=kinds[name],
                count=len(ordered),
                avg_ns=sum(ordered) / len(ordered),
                p50_ns=percentile(ordered, 0.50),
                p95_ns=percentile(ordered, 0.95),
                p99_ns=percentile(ordered, 0.99),
                max_ns=ordered[-1],
            )
        )
    return stats


def _median(ordered: Sequence[int]) -> float:
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def flag_anomalies(forest: SpanForest, factor: float = 3.0) -> List[Anomaly]:
    """Leaf spans whose duration exceeds ``factor`` x the flow median
    for that hop.  Zero-median hops (back-to-back tracepoints) never
    flag; ordering is (hop first-appearance, then forest order)."""
    if factor <= 0:
        raise ValueError(f"anomaly factor must be positive, got {factor}")
    groups = _leaf_spans(forest)
    anomalies = []
    for name, pairs in groups.items():
        median = _median(sorted(span.duration_ns for _, span in pairs))
        if median <= 0:
            continue
        threshold = factor * median
        for tree, span in pairs:  # (forest order, walk order), as before
            if span.duration_ns > threshold:
                anomalies.append(
                    Anomaly(
                        trace_id=tree.trace_id,
                        name=name,
                        duration_ns=span.duration_ns,
                        median_ns=median,
                        ratio=span.duration_ns / median,
                    )
                )
    return anomalies


def segments_from_forest(
    forest: SpanForest, chain: Sequence[str]
) -> List[SegmentLatency]:
    """The forest's leaf durations in :class:`SegmentLatency` form, one
    segment per consecutive chain pair -- what
    :func:`repro.analysis.reports.decomposition_table` renders.  Only
    trees observed at both endpoints of a pair contribute to it."""
    if len(chain) < 2:
        raise ValueError("decomposition needs at least two tracepoints")
    by_name: Dict[str, List[int]] = {}
    for tree in forest:
        for span in tree.hop_spans():
            by_name.setdefault(span.name, []).append(span.duration_ns)
    return [
        SegmentLatency(a, b, by_name.get(hop_name(a, b), []))
        for a, b in zip(chain, chain[1:])
    ]
