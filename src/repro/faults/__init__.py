"""Deterministic fault injection for the tracing pipeline.

Declare what goes wrong in a :class:`FaultPlan` (channel loss /
duplication / delay, agent crashes, ring-buffer pressure), hand it to
:meth:`VNetTracer.set_fault_plan` or
:meth:`TracerSession.with_fault_plan`, and the run replays those
faults deterministically from the plan's seed.  The pipeline's
resilient delivery (ack + retry control plane, at-least-once
sequence-numbered shipment with collector-side dedup) is designed to
survive them; see ``docs/FAULTS.md`` for the full fault model and
delivery semantics.
"""

from repro.faults.inject import CLEAN_DECISION, Decision, FaultInjector
from repro.faults.metrics import FaultMetrics
from repro.faults.plan import (
    ChannelFaults,
    CrashEvent,
    FaultPlan,
    FaultPlanError,
    RingPressureEvent,
)

__all__ = [
    "FaultPlan",
    "ChannelFaults",
    "CrashEvent",
    "RingPressureEvent",
    "FaultPlanError",
    "FaultInjector",
    "FaultMetrics",
    "Decision",
    "CLEAN_DECISION",
]
