"""The ``faults`` stage of the metrics contract, in one helper.

Dispatcher, agents, collector, and the injector all account their
retry / fault events through a shared :class:`FaultMetrics` so the
whole stage registers as a unit (``register_spec`` is get-or-create,
so several components constructing one against the same registry is
fine).  Without a registry every increment is a no-op -- the resilient
delivery machinery never requires the observability layer.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import contract as obs_contract
from repro.obs.registry import MetricsRegistry


class FaultMetrics:
    """Increment helpers over the faults-stage contract metrics."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry
        if registry is None:
            self._deploy_attempts = self._deploy_retries = None
            self._ship_attempts = self._ship_retries = None
            self._control_injected = self._shipment_injected = None
            self._crashes = self._restarts = None
            self._records_lost = self._ring_pressure = self._deduped = None
            return
        self._deploy_attempts = registry.register_spec(
            obs_contract.RETRY_DEPLOY_ATTEMPTS)
        self._deploy_retries = registry.register_spec(
            obs_contract.RETRY_DEPLOY_RETRIES)
        self._ship_attempts = registry.register_spec(obs_contract.RETRY_SHIP_ATTEMPTS)
        self._ship_retries = registry.register_spec(obs_contract.RETRY_SHIP_RETRIES)
        self._control_injected = registry.register_spec(
            obs_contract.FAULT_CONTROL_INJECTED)
        self._shipment_injected = registry.register_spec(
            obs_contract.FAULT_SHIPMENT_INJECTED)
        self._crashes = registry.register_spec(obs_contract.FAULT_AGENT_CRASHES)
        self._restarts = registry.register_spec(obs_contract.FAULT_AGENT_RESTARTS)
        self._records_lost = registry.register_spec(obs_contract.FAULT_RECORDS_LOST)
        self._ring_pressure = registry.register_spec(obs_contract.FAULT_RING_PRESSURE)
        self._deduped = registry.register_spec(obs_contract.FAULT_SHIPMENT_DEDUPED)

    # -- retries -----------------------------------------------------------

    def deploy_attempt(self, node: str) -> None:
        if self._deploy_attempts is not None:
            self._deploy_attempts.inc(labels=(node,))

    def deploy_retry(self, node: str) -> None:
        if self._deploy_retries is not None:
            self._deploy_retries.inc(labels=(node,))

    def ship_attempt(self, node: str) -> None:
        if self._ship_attempts is not None:
            self._ship_attempts.inc(labels=(node,))

    def ship_retry(self, node: str) -> None:
        if self._ship_retries is not None:
            self._ship_retries.inc(labels=(node,))

    # -- injected faults ---------------------------------------------------

    def control_injected(self, kind: str) -> None:
        if self._control_injected is not None:
            self._control_injected.inc(labels=(kind,))

    def shipment_injected(self, kind: str) -> None:
        if self._shipment_injected is not None:
            self._shipment_injected.inc(labels=(kind,))

    def agent_crash(self, node: str) -> None:
        if self._crashes is not None:
            self._crashes.inc(labels=(node,))

    def agent_restart(self, node: str) -> None:
        if self._restarts is not None:
            self._restarts.inc(labels=(node,))

    def records_lost(self, node: str, reason: str, count: int) -> None:
        if self._records_lost is not None and count > 0:
            self._records_lost.inc(count, labels=(node, reason))

    def ring_pressure(self, node: str) -> None:
        if self._ring_pressure is not None:
            self._ring_pressure.inc(labels=(node,))

    def shipment_deduped(self, node: str) -> None:
        if self._deduped is not None:
            self._deduped.inc(labels=(node,))
