"""Turning a :class:`~repro.faults.plan.FaultPlan` into actual faults.

The injector owns two independent RNG streams forked off the plan's
seed (``faults/control`` and ``faults/shipment``), so adding fault
injection to a run never perturbs any other random consumer (workload
jitter, trace IDs, ...) and two runs with the same seed + plan draw
identical faults.  Each per-message decision consumes exactly three
draws (loss, duplicate, delay) regardless of outcome, keeping the
streams aligned however the pipeline reacts.

Scheduled faults (crashes, ring pressure) are armed on the engine via
:meth:`Engine.at_or_now`, resolving the target agent lazily at fire
time -- an agent crashed before its pressure window simply skips it.
"""

from __future__ import annotations

from typing import Callable, NamedTuple, Optional, TYPE_CHECKING

from repro.faults.metrics import FaultMetrics
from repro.faults.plan import ChannelFaults, FaultPlan
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Engine
from repro.sim.rng import SeededRNG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.agent import Agent


class Decision(NamedTuple):
    """The fate of one message on a faulty channel."""

    drop: bool
    duplicate: bool
    extra_delay_ns: int

    @property
    def clean(self) -> bool:
        return not self.drop and not self.duplicate and self.extra_delay_ns == 0


CLEAN_DECISION = Decision(False, False, 0)


class FaultInjector:
    """Draws per-message fault decisions and schedules planned faults."""

    def __init__(
        self,
        engine: Engine,
        plan: FaultPlan,
        registry: Optional[MetricsRegistry] = None,
        metrics: Optional[FaultMetrics] = None,
    ):
        self.engine = engine
        self.plan = plan
        self.metrics = metrics if metrics is not None else FaultMetrics(registry)
        self._control_rng = SeededRNG(plan.seed, "faults/control")
        self._shipment_rng = SeededRNG(plan.seed, "faults/shipment")
        self._armed = False

    # -- per-message decisions ---------------------------------------------

    def _decide(self, faults: ChannelFaults, rng: SeededRNG) -> Decision:
        if not faults.active:
            return CLEAN_DECISION
        # Always burn three draws so the stream stays aligned no matter
        # which faults fire (see the module docstring).
        drop = rng.random() < faults.loss_prob
        duplicate = rng.random() < faults.dup_prob
        delay_draw = rng.random()
        extra = int(delay_draw * faults.delay_ns_max) if faults.delay_ns_max else 0
        return Decision(drop, duplicate and not drop, 0 if drop else extra)

    def _count(self, decision: Decision, record: Callable[[str], None]) -> Decision:
        if decision.drop:
            record("loss")
        if decision.duplicate:
            record("duplicate")
        if decision.extra_delay_ns > 0:
            record("delay")
        return decision

    def control_decision(self) -> Decision:
        """Fate of one dispatcher<->agent control message (either way:
        package delivery or install ack)."""
        decision = self._decide(self.plan.control, self._control_rng)
        return self._count(decision, self.metrics.control_injected)

    def shipment_decision(self) -> Decision:
        """Fate of one agent->collector batch (or its ack)."""
        decision = self._decide(self.plan.shipment, self._shipment_rng)
        return self._count(decision, self.metrics.shipment_injected)

    # -- scheduled faults --------------------------------------------------

    def arm(self, agent_lookup: Callable[[str], "Optional[Agent]"]) -> None:
        """Schedule the plan's crashes and pressure windows (idempotent).

        ``agent_lookup`` resolves a node name to its agent at fire time,
        so agents added after arming are still reachable.
        """
        if self._armed:
            return
        self._armed = True
        for crash in self.plan.crashes:
            self.engine.at_or_now(crash.at_ns, self._crash, crash, agent_lookup)
        for window in self.plan.ring_pressure:
            self.engine.at_or_now(
                window.at_ns, self._apply_pressure, window, agent_lookup)

    def _crash(self, crash, agent_lookup) -> None:
        agent = agent_lookup(crash.node)
        if agent is None:
            return
        agent.crash()
        self.metrics.agent_crash(crash.node)
        if crash.restart_after_ns is not None:
            self.engine.schedule(crash.restart_after_ns, self._restart, crash.node,
                                 agent_lookup)

    def _restart(self, node: str, agent_lookup) -> None:
        agent = agent_lookup(node)
        if agent is None:
            return
        agent.restart()
        self.metrics.agent_restart(node)

    def _apply_pressure(self, window, agent_lookup) -> None:
        agent = agent_lookup(window.node)
        ring = agent.ring if agent is not None else None
        if ring is None or getattr(agent, "crashed", False):
            return
        reserved = ring.reserve(window.reserve_bytes)
        if reserved <= 0:
            return
        self.metrics.ring_pressure(window.node)
        # Release exactly what was reserved, on the same ring object --
        # if the agent reinstalled meanwhile, the stale release is a
        # harmless no-op on a retired buffer.
        self.engine.schedule(window.duration_ns, ring.release, reserved)
