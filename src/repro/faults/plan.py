"""Declarative fault plans.

A :class:`FaultPlan` describes *every* fault a run will experience, up
front and deterministically: loss / duplication / extra delay on the
dispatcher<->agent control channel and the agent->collector shipment
channel, agent crashes (with optional restarts) at scheduled virtual
times, and forced ring-buffer pressure windows.  The plan is plain
data; :class:`~repro.faults.inject.FaultInjector` turns it into engine
events and per-message drop/duplicate/delay decisions drawn from
:class:`~repro.sim.rng.SeededRNG` streams keyed off ``plan.seed`` --
so the same plan and seed reproduce the same faults byte-for-byte
(tested by the CI determinism job; see ``docs/FAULTS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


class FaultPlanError(ValueError):
    """Malformed fault plan."""


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{name} must be in [0, 1], got {value}")


@dataclass
class ChannelFaults:
    """Loss / duplication / extra delay on one message channel.

    ``loss_prob`` drops a message entirely, ``dup_prob`` delivers a
    second copy, and ``delay_ns_max`` adds a uniform extra delay in
    ``[0, delay_ns_max]`` on top of the channel's nominal latency.
    Loss and duplication are drawn independently per message; a message
    can be both delayed and duplicated, but a dropped message is simply
    gone (its retry, if any, draws fresh decisions).
    """

    loss_prob: float = 0.0
    dup_prob: float = 0.0
    delay_ns_max: int = 0

    def __post_init__(self) -> None:
        _check_prob("loss_prob", self.loss_prob)
        _check_prob("dup_prob", self.dup_prob)
        if self.delay_ns_max < 0:
            raise FaultPlanError(f"delay_ns_max must be >= 0, got {self.delay_ns_max}")

    @property
    def active(self) -> bool:
        return self.loss_prob > 0 or self.dup_prob > 0 or self.delay_ns_max > 0


@dataclass
class CrashEvent:
    """Crash ``node``'s agent at ``at_ns``; restart it ``restart_after_ns``
    later (``None`` = the agent stays down for the rest of the run).

    A crash discards the agent's ring buffer and local store *without*
    flushing (unlike ``teardown()``, which drains first); the discarded
    records are counted under ``vnt_fault_records_lost_total`` with
    reasons ``crash_ring`` / ``crash_store``.
    """

    node: str
    at_ns: int
    restart_after_ns: "int | None" = None

    def __post_init__(self) -> None:
        if not self.node:
            raise FaultPlanError("crash event needs a node name")
        if self.at_ns < 0:
            raise FaultPlanError(f"crash at_ns must be >= 0, got {self.at_ns}")
        if self.restart_after_ns is not None and self.restart_after_ns <= 0:
            raise FaultPlanError(
                f"restart_after_ns must be > 0, got {self.restart_after_ns}"
            )


@dataclass
class RingPressureEvent:
    """Reserve ``reserve_bytes`` of ``node``'s ring buffer for
    ``duration_ns`` starting at ``at_ns`` -- simulating a competing
    kernel consumer squeezing the buffer so the configured degradation
    policy (drop-oldest / drop-newest / sample) actually engages.
    """

    node: str
    at_ns: int
    reserve_bytes: int
    duration_ns: int

    def __post_init__(self) -> None:
        if not self.node:
            raise FaultPlanError("ring pressure event needs a node name")
        if self.at_ns < 0:
            raise FaultPlanError(f"pressure at_ns must be >= 0, got {self.at_ns}")
        if self.reserve_bytes <= 0:
            raise FaultPlanError(
                f"reserve_bytes must be > 0, got {self.reserve_bytes}"
            )
        if self.duration_ns <= 0:
            raise FaultPlanError(f"duration_ns must be > 0, got {self.duration_ns}")


@dataclass
class FaultPlan:
    """Everything that will go wrong in one run, declared up front."""

    seed: int = 0
    control: ChannelFaults = field(default_factory=ChannelFaults)
    shipment: ChannelFaults = field(default_factory=ChannelFaults)
    crashes: List[CrashEvent] = field(default_factory=list)
    ring_pressure: List[RingPressureEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.seed = int(self.seed)

    @property
    def active(self) -> bool:
        """Whether the plan injects anything at all."""
        return (
            self.control.active
            or self.shipment.active
            or bool(self.crashes)
            or bool(self.ring_pressure)
        )

    def describe(self) -> str:
        """One-line human summary (used by the ``repro faults`` CLI)."""
        parts = [f"seed={self.seed}"]
        if self.control.active:
            parts.append(
                f"control(loss={self.control.loss_prob} dup={self.control.dup_prob} "
                f"delay<={self.control.delay_ns_max}ns)"
            )
        if self.shipment.active:
            parts.append(
                f"shipment(loss={self.shipment.loss_prob} "
                f"dup={self.shipment.dup_prob} "
                f"delay<={self.shipment.delay_ns_max}ns)"
            )
        if self.crashes:
            parts.append(f"crashes={len(self.crashes)}")
        if self.ring_pressure:
            parts.append(f"pressure_windows={len(self.ring_pressure)}")
        return " ".join(parts) if len(parts) > 1 else f"seed={self.seed} (no faults)"
