"""Cross-node clock synchronization via Cristian's algorithm (§III-B).

Exactly the paper's Fig. 4 procedure: tracing scripts attach at the NIC
interfaces of the master and a monitored node; sequential UDP
ping-pongs record T1 (master tx), T2 (node rx), T3 (node tx), T4
(master rx) *using each node's own CLOCK_MONOTONIC through
bpf_ktime_get_ns()*.  With 100 samples, the minimum of
(RTT - processing)/2 estimates the one-way transmission time, and the
skew is T1 + T_1wt - T2 evaluated at that minimal sample.

The probes are real compiled eBPF programs: one filtering the sync
port as destination (requests -> T1/T2) and one as source
(replies -> T3/T4), so the four timestamp streams separate cleanly.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional

from repro.core.compiler import compile_script
from repro.core.config import ActionSpec, FilterRule, ID_MODE_NONE, TracepointSpec
from repro.core.records import TraceRecord
from repro.ebpf.maps import PerfEventArray
from repro.ebpf.probes import EBPFAttachment
from repro.ebpf.vm import ExecutionEnv
from repro.net.addressing import IPv4Address
from repro.net.packet import IPPROTO_UDP
from repro.net.stack import KernelNode
from repro.obs import contract as obs_contract
from repro.obs.registry import MetricsRegistry

DEFAULT_SYNC_PORT = 19997
DEFAULT_SAMPLES = 100


class SkewEstimate(NamedTuple):
    """Result of one synchronization run."""

    skew_ns: int  # ADD to monitored-node timestamps to get master time
    one_way_ns: int  # estimated minimal one-way transmission time
    rtt_min_ns: int
    samples: int

    @property
    def offset_ns(self) -> int:
        """The per-node correction consumers apply: an alias for
        :attr:`skew_ns` under the name the span layer uses
        (``TraceDB.set_clock_skew`` / device-span ``clock_offset_ns``)."""
        return self.skew_ns


class _ProbePoint:
    """One compiled program attached at a NIC hook; timestamps in order."""

    def __init__(self, node: KernelNode, hook: str, rule: FilterRule, label: str):
        self.node = node
        self.hook = hook
        self.timestamps: List[int] = []
        perf = PerfEventArray(num_cpus=len(node.cpus), name=f"sync:{label}")
        perf.set_consumer(self._on_record)
        tracepoint = TracepointSpec(
            node=node.name, hook=hook, id_mode=ID_MODE_NONE, label=f"sync:{label}"
        )
        program, maps = compile_script(
            rule, tracepoint, ActionSpec(record=True), perf_map=perf
        )
        program.load()
        env = ExecutionEnv(maps=maps, clock=node.clock.monotonic_ns)
        self.attachment = EBPFAttachment(program, env, hook_id=tracepoint.tracepoint_id)
        node.hooks.attach(hook, self.attachment)

    def _on_record(self, _cpu: int, raw: bytes) -> None:
        self.timestamps.append(TraceRecord.unpack(raw).timestamp_ns)

    def detach(self) -> None:
        self.node.hooks.detach(self.hook, self.attachment)


class ClockSynchronizer:
    """Runs the Fig. 4 exchange between the master and one node."""

    def __init__(
        self,
        master_node: KernelNode,
        master_ip: IPv4Address,
        master_nic_hook: str,
        target_node: KernelNode,
        target_ip: IPv4Address,
        target_nic_hook: str,
        samples: int = DEFAULT_SAMPLES,
        port: int = DEFAULT_SYNC_PORT,
        interval_ns: int = 500_000,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.master_node = master_node
        self.target_node = target_node
        self.registry = registry
        self.master_ip = master_ip
        self.target_ip = target_ip
        self.samples = samples
        self.port = port
        self.interval_ns = interval_ns
        self.engine = master_node.engine

        request_rule = FilterRule(dst_port=port, protocol=IPPROTO_UDP)
        reply_rule = FilterRule(src_port=port, protocol=IPPROTO_UDP)
        self._t1 = _ProbePoint(master_node, master_nic_hook, request_rule, "t1")
        self._t2 = _ProbePoint(target_node, target_nic_hook, request_rule, "t2")
        self._t3 = _ProbePoint(target_node, target_nic_hook, reply_rule, "t3")
        self._t4 = _ProbePoint(master_node, master_nic_hook, reply_rule, "t4")

        self._server = target_node.bind_udp(target_ip, port)
        self._server.on_receive = self._echo
        # The client must NOT use the sync port as its source, or the
        # request- and reply-filter programs would both match both
        # directions and the four timestamp streams would interleave.
        self._client = master_node.bind_udp(master_ip, port + 1)
        self._client.on_receive = self._on_reply
        self._sent = 0
        self._received = 0
        self.result: Optional[SkewEstimate] = None
        self.on_done: Optional[Callable[[SkewEstimate], None]] = None

    @property
    def offset_ns(self) -> Optional[int]:
        """The estimated correction to ADD to the target node's
        timestamps (``None`` until the exchange completes).  This is the
        per-node offset the trace database aligns with and the span
        layer stamps onto device spans."""
        return self.result.skew_ns if self.result is not None else None

    def programs(self) -> List:
        """The four compiled probe programs (for eBPF cost accounting)."""
        return [
            point.attachment.program
            for point in (self._t1, self._t2, self._t3, self._t4)
        ]

    # -- exchange -------------------------------------------------------------

    def start(self) -> None:
        self._send_next()

    def _send_next(self) -> None:
        if self._sent >= self.samples:
            return
        self._sent += 1
        self._client.sendto(self.target_ip, self.port, b"\x00" * 16, app="clocksync")

    def _echo(self, payload: bytes, src_ip, src_port, _packet) -> None:
        self._server.sendto(src_ip, src_port, payload, app="clocksync-reply")

    def _on_reply(self, _payload: bytes, _src, _port, _packet) -> None:
        self._received += 1
        if self._received >= self.samples:
            self._finish()
        else:
            # Strictly sequential samples keep the four streams index-aligned.
            self.engine.schedule(self.interval_ns, self._send_next)

    # -- estimation -----------------------------------------------------------------

    def _finish(self) -> None:
        n = min(
            len(self._t1.timestamps),
            len(self._t2.timestamps),
            len(self._t3.timestamps),
            len(self._t4.timestamps),
        )
        if n == 0:
            raise RuntimeError("clock sync: no samples recorded")
        best_owt = None
        best_index = 0
        rtt_min = None
        for i in range(n):
            rtt = self._t4.timestamps[i] - self._t1.timestamps[i]
            processing = self._t3.timestamps[i] - self._t2.timestamps[i]
            owt = (rtt - processing) // 2
            if best_owt is None or owt < best_owt:
                best_owt = owt
                best_index = i
            if rtt_min is None or rtt < rtt_min:
                rtt_min = rtt
        # Skew to ADD to target timestamps: master_time - target_time.
        skew = (self._t1.timestamps[best_index] + best_owt) - self._t2.timestamps[best_index]
        self.result = SkewEstimate(
            skew_ns=skew, one_way_ns=best_owt, rtt_min_ns=rtt_min, samples=n
        )
        if self.registry is not None:
            self._export_round(self.result)
        self._teardown()
        if self.on_done is not None:
            self.on_done(self.result)

    def _export_round(self, estimate: SkewEstimate) -> None:
        """Export the round to the ``clocksync`` obs stage.  The residual
        error gauge is Cristian's accuracy bound: the estimate is within
        +/- the minimal one-way transmission time of the true skew."""
        node = (self.target_node.name,)
        self.registry.register_spec(obs_contract.CLOCKSYNC_ROUNDS).inc()
        self.registry.register_spec(obs_contract.CLOCKSYNC_SKEW).set(
            estimate.skew_ns, labels=node)
        self.registry.register_spec(obs_contract.CLOCKSYNC_RESIDUAL).set(
            estimate.one_way_ns, labels=node)
        self.registry.register_spec(obs_contract.CLOCKSYNC_RTT_MIN).set(
            estimate.rtt_min_ns, labels=node)

    def _teardown(self) -> None:
        for point in (self._t1, self._t2, self._t3, self._t4):
            point.detach()
        self._client.close()
        self._server.close()
