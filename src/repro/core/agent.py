"""The per-node tracing agent (the daemon of §III-A/E).

An agent sleeps until the dispatcher delivers a control package, then:

1. compiles each tracepoint's script to eBPF bytecode
   (:mod:`repro.core.compiler`);
2. loads it -- verification (and JIT) time is charged on the node's
   CPU 0, so deploying tracing is itself visible in the timeline;
3. attaches it at the configured hook with the node's clock and a
   per-agent perf-event consumer feeding the kernel ring buffer;
4. periodically flushes the ring buffer to a local store and, online or
   at collection time, ships batches to the collector with simulated
   CPU + transfer costs;
5. heartbeats to the collector.

``teardown()`` detaches everything -- the paper's "reconfigured ...
during the system runtime" path is deploy/teardown/deploy.

Resilience (docs/FAULTS.md):

* installation is *idempotent*: deliveries carry a monotone deploy ID,
  a duplicate of the current deploy acks without reinstalling, and a
  stale (superseded) one is ignored;
* online shipment is *at-least-once*: each batch gets a per-node
  sequence number and is retransmitted (capped exponential backoff,
  ``GlobalConfig.ship_max_attempts`` budget) until the collector's ack
  arrives; the collector dedups on (node, seq) and applies batches in
  sequence order, so retries cannot duplicate or reorder rows.
  Retransmissions re-send the already-serialized buffer and charge no
  extra agent CPU -- only the first send pays the batch cost, keeping
  the data-plane timing of a faulty run identical to a fault-free one;
* ``crash()`` models the daemon dying: scripts detach, buffered and
  in-flight records are discarded *with exact loss accounting*
  (``vnt_fault_records_lost_total``), abandoned sequence numbers post
  gap notices so the collector's resequencer never wedges, and
  ``restart()`` reinstalls the last package (shipment seqs continue,
  never reuse).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.compiler import compile_script
from repro.core.config import ControlPackage
from repro.core.records import RECORD_BYTES
from repro.core.ringbuffer import FLUSH_FIXED_COST_NS, TraceRingBuffer
from repro.ebpf.maps import PerCPUArrayMap, PerfEventArray
from repro.ebpf.probes import EBPFAttachment
from repro.ebpf.vm import BPFProgram, ExecutionEnv
from repro.faults.metrics import FaultMetrics
from repro.net.stack import KernelNode
from repro.obs import contract as obs_contract
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.collector import RawDataCollector
    from repro.faults.inject import FaultInjector

# Shipping a batch to the collector: syscall + send cost per batch plus
# a per-byte serialization term (only when collection is online).
BATCH_FIXED_COST_NS = 4_000
BATCH_NS_PER_BYTE = 0.35
# Agent -> collector network latency for one online batch (or its ack).
SHIP_NET_LATENCY_NS = 200_000


class _PendingShip:
    """Retry state for one sequence-numbered online batch.

    Carries the packed blob exactly as the ring buffer produced it --
    the records are never decoded on the agent; the collector
    bulk-ingests the blob straight into the trace database's columns."""

    __slots__ = ("seq", "blob", "count", "shipped_at", "attempts", "acked",
                 "delivered", "timer")

    def __init__(self, seq: int, blob: bytes, count: int, shipped_at: int):
        self.seq = seq
        self.blob = blob
        self.count = count
        self.shipped_at = shipped_at
        self.attempts = 0
        self.acked = False
        self.delivered = False  # at least one copy reached the collector
        self.timer = None


class InstalledScript:
    """Bookkeeping for one attached tracing script."""

    def __init__(
        self,
        label: str,
        hook: str,
        attachment: EBPFAttachment,
        perf_map: PerfEventArray,
        counter_map: Optional[PerCPUArrayMap],
        histogram_map: Optional[PerCPUArrayMap] = None,
    ):
        self.label = label
        self.hook = hook
        self.attachment = attachment
        self.perf_map = perf_map
        self.counter_map = counter_map
        self.histogram_map = histogram_map

    def counter_value(self) -> int:
        if self.counter_map is None:
            return 0
        return self.counter_map.sum_u64(0)

    def histogram(self) -> List[int]:
        """Per-bucket totals aggregated across CPUs (log2 size hist)."""
        if self.histogram_map is None:
            return []
        return [
            self.histogram_map.sum_u64(i)
            for i in range(self.histogram_map.max_entries)
        ]


class Agent:
    """One monitoring daemon."""

    def __init__(
        self,
        node: KernelNode,
        collector: "RawDataCollector",
        registry: Optional[MetricsRegistry] = None,
    ):
        self.node = node
        self.collector = collector
        self.engine = node.engine
        self.registry = registry
        self.package: Optional[ControlPackage] = None
        self.scripts: Dict[str, InstalledScript] = {}
        self.ring: Optional[TraceRingBuffer] = None
        self.local_store: List[bytes] = []
        self.batches_sent = 0
        self.records_forwarded = 0
        # (ship_start_ns, delivered_ns, node, records) per batch shipped
        # online -- the agent->collector legs of the control-plane
        # timeline (offline pulls are the master's work, not the
        # agent's, and are logged by the collector only).
        self.ship_log: List[Tuple[int, int, str, int]] = []
        # Every program this agent ever loaded (kept across teardown so
        # the obs layer's eBPF counters stay monotone).
        self.loaded_programs: List[BPFProgram] = []
        # Fires accumulated by scripts that were since torn down.
        self._retired_fires: Dict[Tuple[str, str], int] = {}
        self._heartbeat_timer = None
        self._online = False
        self.crashed = False
        self.injector: "Optional[FaultInjector]" = None
        self.fault_metrics = FaultMetrics(registry)
        # At-least-once shipping state: a per-node monotone sequence
        # number (never reused, survives crash/restart) and the batches
        # still awaiting the collector's ack.
        self._ship_seq = 0
        self._pending_ships: Dict[int, _PendingShip] = {}
        self._installed_deploy_id: Optional[int] = None

        self._m_flush_latency = self._m_batches = None
        self._m_records = self._m_load_ns = None
        if registry is not None:
            fires = registry.register_spec(obs_contract.AGENT_PROBE_FIRES)
            fires.add_callback(self._probe_fire_samples)
            self._m_flush_latency = registry.register_spec(
                obs_contract.AGENT_FLUSH_LATENCY)
            self._m_batches = registry.register_spec(obs_contract.AGENT_BATCHES_SENT)
            self._m_records = registry.register_spec(
                obs_contract.AGENT_RECORDS_FORWARDED)
            self._m_load_ns = registry.register_spec(obs_contract.AGENT_BPF_LOAD_NS)
        collector.register_agent(self)

    # -- control plane -------------------------------------------------------

    def install(
        self,
        package: ControlPackage,
        deploy_id: Optional[int] = None,
        force: bool = False,
    ) -> str:
        """Deploy a control package (called on dispatcher delivery).

        Idempotent under retries: ``deploy_id`` is the dispatcher's
        monotone deployment number.  Returns one of

        * ``"installed"`` -- scripts compiled and attached;
        * ``"duplicate"`` -- this deploy is already installed (a retry
          or fault-injected copy); ack it, change nothing;
        * ``"stale"`` -- a newer deploy superseded this one; ignored;
        * ``"down"`` -- the agent is crashed and cannot install.

        ``deploy_id=None`` (direct calls, tests) always installs;
        ``force=True`` reinstalls the same deploy (the restart path).
        """
        if self.crashed and not force:
            return "down"
        if deploy_id is not None and self._installed_deploy_id is not None:
            if deploy_id == self._installed_deploy_id and not force:
                return "duplicate"
            if deploy_id < self._installed_deploy_id:
                return "stale"
        if self.scripts:
            self.teardown()
        self.package = package
        if deploy_id is not None:
            self._installed_deploy_id = deploy_id
        cfg = package.global_config
        self._online = cfg.online_collection
        self.ring = TraceRingBuffer(
            self.engine,
            capacity_bytes=cfg.ring_buffer_bytes,
            flush_interval_ns=cfg.flush_interval_ns,
            on_flush=self._on_ring_flush,
            name=f"{self.node.name}/ring",
            strict=cfg.ring_strict,
            registry=self.registry,
            node=self.node.name,
            policy=cfg.ring_policy,
            sample_prob=cfg.ring_sample_prob,
            rng=self.node.rng.fork("ring-policy"),
            fault_metrics=self.fault_metrics,
        )
        self.ring.start()

        for tracepoint in package.tracepoints:
            perf_map = PerfEventArray(
                num_cpus=len(self.node.cpus), name=f"perf:{tracepoint.label}"
            )
            perf_map.set_consumer(self._on_perf_record)
            counter_map = None
            if package.action.count:
                counter_map = PerCPUArrayMap(
                    value_size=8,
                    max_entries=1,
                    num_cpus=len(self.node.cpus),
                    name=f"count:{tracepoint.label}",
                )
            histogram_map = None
            if package.action.size_histogram:
                from repro.core.compiler import HISTOGRAM_BUCKETS

                histogram_map = PerCPUArrayMap(
                    value_size=8,
                    max_entries=HISTOGRAM_BUCKETS,
                    num_cpus=len(self.node.cpus),
                    name=f"hist:{tracepoint.label}",
                )
            program, maps = compile_script(
                package.rule,
                tracepoint,
                package.action,
                perf_map=perf_map,
                counter_map=counter_map,
                histogram_map=histogram_map,
                jit=cfg.jit,
            )
            load_cost = program.load()
            self.loaded_programs.append(program)
            if self._m_load_ns is not None:
                self._m_load_ns.inc(load_cost, labels=(self.node.name,))
            # Verification/JIT happens in the bpf() syscall on a host CPU.
            self.node.cpus[0].submit(load_cost, None, tag="bpf-load")
            env = ExecutionEnv(
                maps=maps,
                clock=self.node.clock.monotonic_ns,
                prandom_u32=self.node.rng.fork(f"bpf/{tracepoint.label}").random_u32,
            )
            attachment = EBPFAttachment(
                program,
                env,
                hook_id=tracepoint.tracepoint_id,
                use_inner=tracepoint.strip_vxlan,
                name=f"vnettracer:{tracepoint.label}",
            )
            self.node.hooks.attach(tracepoint.hook, attachment)
            self.scripts[tracepoint.label] = InstalledScript(
                tracepoint.label, tracepoint.hook, attachment, perf_map,
                counter_map, histogram_map,
            )

        self._schedule_heartbeat()
        return "installed"

    def set_fault_injector(self, injector: "Optional[FaultInjector]") -> None:
        """Route this agent's shipments through a fault injector."""
        self.injector = injector

    def crash(self) -> None:
        """The daemon dies: scripts detach, buffered records are lost.

        Unlike :meth:`teardown` (a graceful reconfiguration that flushes
        the ring first), a crash discards the ring buffer and the local
        store outright and abandons in-flight shipments.  Every lost
        record is accounted under ``vnt_fault_records_lost_total`` with
        reasons ``crash_ring`` / ``crash_store`` / ``shipment``, and
        abandoned sequence numbers post gap notices so the collector's
        resequencer is never left waiting."""
        if self.crashed:
            return
        name = self.node.name
        for label, script in self.scripts.items():
            key = (name, label)
            self._retired_fires[key] = (
                self._retired_fires.get(key, 0) + script.attachment.program.run_count
            )
            self.node.hooks.detach(script.hook, script.attachment)
        self.scripts.clear()
        if self.ring is not None:
            lost = self.ring.discard()
            self.ring.stop()
            self.fault_metrics.records_lost(name, "crash_ring", lost)
        if self.local_store:
            self.fault_metrics.records_lost(name, "crash_store", len(self.local_store))
            self.local_store = []
        for state in list(self._pending_ships.values()):
            if state.timer is not None:
                state.timer.cancel()
                state.timer = None
            if not state.delivered:
                self.fault_metrics.records_lost(name, "shipment", state.count)
                self.collector.skip_shipment(name, state.seq)
        self._pending_ships.clear()
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None
        self.crashed = True

    def restart(self) -> None:
        """Bring a crashed daemon back: reinstall the last control
        package (if any) and resume heartbeats.  Shipment sequence
        numbers continue where they left off -- a restarted agent never
        reuses a sequence number, so collector-side dedup stays sound."""
        if not self.crashed:
            return
        self.crashed = False
        if self.package is not None:
            self.install(self.package, deploy_id=self._installed_deploy_id, force=True)

    def teardown(self) -> None:
        """Detach all scripts and stop buffering (runtime reconfiguration)."""
        for label, script in self.scripts.items():
            key = (self.node.name, label)
            self._retired_fires[key] = (
                self._retired_fires.get(key, 0) + script.attachment.program.run_count
            )
            self.node.hooks.detach(script.hook, script.attachment)
        self.scripts.clear()
        if self.ring is not None:
            self.ring.flush()
            self.ring.stop()
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None

    # -- data plane ------------------------------------------------------------

    def _on_perf_record(self, _cpu: int, record: bytes) -> None:
        if self.ring is not None:
            self.ring.append(record)

    def _on_ring_flush(self, batch: List[bytes]) -> None:
        # The mmap'd /proc buffer: the drain itself is cheap and does
        # not copy per record.
        self.node.cpus[0].submit(FLUSH_FIXED_COST_NS, None, tag="ring-flush")
        if self._m_flush_latency is not None and self.ring is not None:
            self._m_flush_latency.observe(
                self.ring.last_flush_age_ns, labels=(self.node.name,))
        if self._online:
            self._ship(batch)
        else:
            self.local_store.extend(batch)

    def _ship(self, batch: List[bytes]) -> None:
        blob = b"".join(batch)
        # Same formula as the legacy per-record path: every record is
        # exactly RECORD_BYTES on the wire, so len(blob) == len(batch) *
        # RECORD_BYTES and the simulated timing is unchanged.
        cost = BATCH_FIXED_COST_NS + int(len(blob) * BATCH_NS_PER_BYTE)
        self.batches_sent += 1
        self.records_forwarded += len(batch)
        self._count_shipment(len(batch))
        self._ship_seq += 1
        state = _PendingShip(self._ship_seq, blob, len(batch), self.engine.now)
        self._pending_ships[state.seq] = state
        # Online shipping consumes agent CPU (once -- retransmissions
        # resend the serialized buffer for free) and takes network time.
        self.node.cpus[0].submit(cost, lambda: self._transmit(state))

    def _transmit(self, state: _PendingShip) -> None:
        """One transmission attempt of a sequence-numbered batch."""
        if self.crashed or state.acked:
            return
        state.attempts += 1
        name = self.node.name
        self.fault_metrics.ship_attempt(name)
        if state.attempts > 1:
            self.fault_metrics.ship_retry(name)
        decision = (
            self.injector.shipment_decision() if self.injector is not None else None
        )
        if decision is None or not decision.drop:
            delay = SHIP_NET_LATENCY_NS + (decision.extra_delay_ns if decision else 0)
            self.engine.schedule(delay, self._deliver_ship, state)
            if decision is not None and decision.duplicate:
                self.engine.schedule(
                    delay + SHIP_NET_LATENCY_NS, self._deliver_ship, state)
        cfg = self.package.global_config
        backoff = 0
        if state.attempts >= 2:
            raw = cfg.ship_backoff_base_ns * (2 ** (state.attempts - 2))
            backoff = min(raw, cfg.ship_backoff_cap_ns)
        state.timer = self.engine.schedule(
            SHIP_NET_LATENCY_NS + cfg.ship_ack_timeout_ns + backoff,
            self._check_ship_ack, state,
        )

    def _deliver_ship(self, state: _PendingShip) -> None:
        """One copy of the batch arrives at the collector."""
        first = not state.delivered
        state.delivered = True
        if first:
            self.ship_log.append(
                (state.shipped_at, self.engine.now, self.node.name, state.count)
            )
        self.collector.receive_batch(self.node.name, state.blob, seq=state.seq)
        # The ack crosses the same lossy channel, in the other direction.
        decision = (
            self.injector.shipment_decision() if self.injector is not None else None
        )
        if decision is None or not decision.drop:
            delay = SHIP_NET_LATENCY_NS + (decision.extra_delay_ns if decision else 0)
            self.engine.schedule(delay, self._on_ship_ack, state)

    def _on_ship_ack(self, state: _PendingShip) -> None:
        if state.acked:
            return
        state.acked = True
        if state.timer is not None:
            state.timer.cancel()
            state.timer = None
        self._pending_ships.pop(state.seq, None)

    def _check_ship_ack(self, state: _PendingShip) -> None:
        if state.acked or self.crashed:
            return
        cfg = self.package.global_config
        if state.attempts < cfg.ship_max_attempts:
            self._transmit(state)
            return
        # Budget exhausted: abandon the batch.  If no copy ever reached
        # the collector the records are lost -- account them exactly and
        # post the gap notice; if only the acks were lost, the data is
        # safe in the database already.
        self._pending_ships.pop(state.seq, None)
        if not state.delivered:
            self.fault_metrics.records_lost(
                self.node.name, "shipment", state.count)
            self.collector.skip_shipment(self.node.name, state.seq)

    def collect_local(self) -> int:
        """Offline collection: drain the local store to the collector
        as one packed blob (records stay serialized end to end)."""
        if self.ring is not None:
            self.ring.flush()
        if not self.local_store:
            return 0
        batch, self.local_store = self.local_store, []
        blob = b"".join(batch)
        count = len(blob) // RECORD_BYTES
        self.records_forwarded += count
        self.batches_sent += 1
        self._count_shipment(count)
        # Offline pull: the master collected, the agent did not report
        # -- must not refresh the agent's heartbeat (see collector docs).
        self.collector.receive_batch(self.node.name, blob, liveness=False)
        return count

    # -- heartbeats -------------------------------------------------------------

    def _schedule_heartbeat(self) -> None:
        interval = self.package.global_config.heartbeat_interval_ns
        self._heartbeat_timer = self.engine.schedule(interval, self._heartbeat)

    def _heartbeat(self) -> None:
        self.collector.heartbeat(self.node.name)
        self._schedule_heartbeat()

    # -- self-observability ------------------------------------------------------

    def _count_shipment(self, records: int) -> None:
        if self._m_batches is not None:
            self._m_batches.inc(labels=(self.node.name,))
            self._m_records.inc(records, labels=(self.node.name,))

    def _probe_fire_samples(self) -> Dict[Tuple[str, str], int]:
        """Pull source for ``vnt_agent_probe_fires_total``: each deployed
        script's program run counter (plus fires from torn-down
        deployments), keyed (node, probe label)."""
        fires = dict(self._retired_fires)
        for label, script in self.scripts.items():
            key = (self.node.name, label)
            fires[key] = fires.get(key, 0) + script.attachment.program.run_count
        return fires

    # -- introspection --------------------------------------------------------------

    def counter(self, label: str) -> int:
        script = self.scripts.get(label)
        return script.counter_value() if script else 0

    def histogram(self, label: str) -> List[int]:
        script = self.scripts.get(label)
        return script.histogram() if script else []

    def dropped_records(self) -> int:
        return self.ring.total_dropped if self.ring is not None else 0

    def __repr__(self) -> str:
        return f"<Agent {self.node.name} scripts={list(self.scripts)}>"
