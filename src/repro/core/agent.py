"""The per-node tracing agent (the daemon of §III-A/E).

An agent sleeps until the dispatcher delivers a control package, then:

1. compiles each tracepoint's script to eBPF bytecode
   (:mod:`repro.core.compiler`);
2. loads it -- verification (and JIT) time is charged on the node's
   CPU 0, so deploying tracing is itself visible in the timeline;
3. attaches it at the configured hook with the node's clock and a
   per-agent perf-event consumer feeding the kernel ring buffer;
4. periodically flushes the ring buffer to a local store and, online or
   at collection time, ships batches to the collector with simulated
   CPU + transfer costs;
5. heartbeats to the collector.

``teardown()`` detaches everything -- the paper's "reconfigured ...
during the system runtime" path is deploy/teardown/deploy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.compiler import compile_script
from repro.core.config import ControlPackage
from repro.core.records import RECORD_BYTES, unpack_batch
from repro.core.ringbuffer import FLUSH_FIXED_COST_NS, TraceRingBuffer
from repro.ebpf.maps import PerCPUArrayMap, PerfEventArray
from repro.ebpf.probes import EBPFAttachment
from repro.ebpf.vm import BPFProgram, ExecutionEnv
from repro.net.stack import KernelNode
from repro.obs import contract as obs_contract
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.collector import RawDataCollector

# Shipping a batch to the collector: syscall + send cost per batch plus
# a per-byte serialization term (only when collection is online).
BATCH_FIXED_COST_NS = 4_000
BATCH_NS_PER_BYTE = 0.35


class InstalledScript:
    """Bookkeeping for one attached tracing script."""

    def __init__(
        self,
        label: str,
        hook: str,
        attachment: EBPFAttachment,
        perf_map: PerfEventArray,
        counter_map: Optional[PerCPUArrayMap],
        histogram_map: Optional[PerCPUArrayMap] = None,
    ):
        self.label = label
        self.hook = hook
        self.attachment = attachment
        self.perf_map = perf_map
        self.counter_map = counter_map
        self.histogram_map = histogram_map

    def counter_value(self) -> int:
        if self.counter_map is None:
            return 0
        return self.counter_map.sum_u64(0)

    def histogram(self) -> List[int]:
        """Per-bucket totals aggregated across CPUs (log2 size hist)."""
        if self.histogram_map is None:
            return []
        return [
            self.histogram_map.sum_u64(i)
            for i in range(self.histogram_map.max_entries)
        ]


class Agent:
    """One monitoring daemon."""

    def __init__(
        self,
        node: KernelNode,
        collector: "RawDataCollector",
        registry: Optional[MetricsRegistry] = None,
    ):
        self.node = node
        self.collector = collector
        self.engine = node.engine
        self.registry = registry
        self.package: Optional[ControlPackage] = None
        self.scripts: Dict[str, InstalledScript] = {}
        self.ring: Optional[TraceRingBuffer] = None
        self.local_store: List[bytes] = []
        self.batches_sent = 0
        self.records_forwarded = 0
        # (ship_start_ns, delivered_ns, node, records) per batch shipped
        # online -- the agent->collector legs of the control-plane
        # timeline (offline pulls are the master's work, not the
        # agent's, and are logged by the collector only).
        self.ship_log: List[Tuple[int, int, str, int]] = []
        # Every program this agent ever loaded (kept across teardown so
        # the obs layer's eBPF counters stay monotone).
        self.loaded_programs: List[BPFProgram] = []
        # Fires accumulated by scripts that were since torn down.
        self._retired_fires: Dict[Tuple[str, str], int] = {}
        self._heartbeat_timer = None
        self._online = False

        self._m_flush_latency = self._m_batches = None
        self._m_records = self._m_load_ns = None
        if registry is not None:
            fires = registry.register_spec(obs_contract.AGENT_PROBE_FIRES)
            fires.add_callback(self._probe_fire_samples)
            self._m_flush_latency = registry.register_spec(
                obs_contract.AGENT_FLUSH_LATENCY)
            self._m_batches = registry.register_spec(obs_contract.AGENT_BATCHES_SENT)
            self._m_records = registry.register_spec(
                obs_contract.AGENT_RECORDS_FORWARDED)
            self._m_load_ns = registry.register_spec(obs_contract.AGENT_BPF_LOAD_NS)
        collector.register_agent(self)

    # -- control plane -------------------------------------------------------

    def install(self, package: ControlPackage) -> None:
        """Deploy a control package (called on dispatcher delivery)."""
        if self.scripts:
            self.teardown()
        self.package = package
        cfg = package.global_config
        self._online = cfg.online_collection
        self.ring = TraceRingBuffer(
            self.engine,
            capacity_bytes=cfg.ring_buffer_bytes,
            flush_interval_ns=cfg.flush_interval_ns,
            on_flush=self._on_ring_flush,
            name=f"{self.node.name}/ring",
            strict=cfg.ring_strict,
            registry=self.registry,
            node=self.node.name,
        )
        self.ring.start()

        for tracepoint in package.tracepoints:
            perf_map = PerfEventArray(
                num_cpus=len(self.node.cpus), name=f"perf:{tracepoint.label}"
            )
            perf_map.set_consumer(self._on_perf_record)
            counter_map = None
            if package.action.count:
                counter_map = PerCPUArrayMap(
                    value_size=8,
                    max_entries=1,
                    num_cpus=len(self.node.cpus),
                    name=f"count:{tracepoint.label}",
                )
            histogram_map = None
            if package.action.size_histogram:
                from repro.core.compiler import HISTOGRAM_BUCKETS

                histogram_map = PerCPUArrayMap(
                    value_size=8,
                    max_entries=HISTOGRAM_BUCKETS,
                    num_cpus=len(self.node.cpus),
                    name=f"hist:{tracepoint.label}",
                )
            program, maps = compile_script(
                package.rule,
                tracepoint,
                package.action,
                perf_map=perf_map,
                counter_map=counter_map,
                histogram_map=histogram_map,
                jit=cfg.jit,
            )
            load_cost = program.load()
            self.loaded_programs.append(program)
            if self._m_load_ns is not None:
                self._m_load_ns.inc(load_cost, labels=(self.node.name,))
            # Verification/JIT happens in the bpf() syscall on a host CPU.
            self.node.cpus[0].submit(load_cost, None, tag="bpf-load")
            env = ExecutionEnv(
                maps=maps,
                clock=self.node.clock.monotonic_ns,
                prandom_u32=self.node.rng.fork(f"bpf/{tracepoint.label}").random_u32,
            )
            attachment = EBPFAttachment(
                program,
                env,
                hook_id=tracepoint.tracepoint_id,
                use_inner=tracepoint.strip_vxlan,
                name=f"vnettracer:{tracepoint.label}",
            )
            self.node.hooks.attach(tracepoint.hook, attachment)
            self.scripts[tracepoint.label] = InstalledScript(
                tracepoint.label, tracepoint.hook, attachment, perf_map,
                counter_map, histogram_map,
            )

        self._schedule_heartbeat()

    def teardown(self) -> None:
        """Detach all scripts and stop buffering (runtime reconfiguration)."""
        for label, script in self.scripts.items():
            key = (self.node.name, label)
            self._retired_fires[key] = (
                self._retired_fires.get(key, 0) + script.attachment.program.run_count
            )
            self.node.hooks.detach(script.hook, script.attachment)
        self.scripts.clear()
        if self.ring is not None:
            self.ring.flush()
            self.ring.stop()
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None

    # -- data plane ------------------------------------------------------------

    def _on_perf_record(self, _cpu: int, record: bytes) -> None:
        if self.ring is not None:
            self.ring.append(record)

    def _on_ring_flush(self, batch: List[bytes]) -> None:
        # The mmap'd /proc buffer: the drain itself is cheap and does
        # not copy per record.
        self.node.cpus[0].submit(FLUSH_FIXED_COST_NS, None, tag="ring-flush")
        if self._m_flush_latency is not None and self.ring is not None:
            self._m_flush_latency.observe(
                self.ring.last_flush_age_ns, labels=(self.node.name,))
        if self._online:
            self._ship(batch)
        else:
            self.local_store.extend(batch)

    def _ship(self, batch: List[bytes]) -> None:
        cost = BATCH_FIXED_COST_NS + int(len(batch) * RECORD_BYTES * BATCH_NS_PER_BYTE)
        self.batches_sent += 1
        self.records_forwarded += len(batch)
        self._count_shipment(len(batch))
        records = unpack_batch(batch)
        shipped_at = self.engine.now

        def deliver() -> None:
            self.ship_log.append(
                (shipped_at, self.engine.now, self.node.name, len(records))
            )
            self.collector.receive_batch(self.node.name, records)

        # Online shipping consumes agent CPU and takes network time.
        self.node.cpus[0].submit(cost, lambda: self.engine.schedule(200_000, deliver))

    def collect_local(self) -> int:
        """Offline collection: drain the local store to the collector."""
        if self.ring is not None:
            self.ring.flush()
        if not self.local_store:
            return 0
        batch, self.local_store = self.local_store, []
        records = unpack_batch(batch)
        self.records_forwarded += len(records)
        self.batches_sent += 1
        self._count_shipment(len(records))
        # Offline pull: the master collected, the agent did not report
        # -- must not refresh the agent's heartbeat (see collector docs).
        self.collector.receive_batch(self.node.name, records, liveness=False)
        return len(records)

    # -- heartbeats -------------------------------------------------------------

    def _schedule_heartbeat(self) -> None:
        interval = self.package.global_config.heartbeat_interval_ns
        self._heartbeat_timer = self.engine.schedule(interval, self._heartbeat)

    def _heartbeat(self) -> None:
        self.collector.heartbeat(self.node.name)
        self._schedule_heartbeat()

    # -- self-observability ------------------------------------------------------

    def _count_shipment(self, records: int) -> None:
        if self._m_batches is not None:
            self._m_batches.inc(labels=(self.node.name,))
            self._m_records.inc(records, labels=(self.node.name,))

    def _probe_fire_samples(self) -> Dict[Tuple[str, str], int]:
        """Pull source for ``vnt_agent_probe_fires_total``: each deployed
        script's program run counter (plus fires from torn-down
        deployments), keyed (node, probe label)."""
        fires = dict(self._retired_fires)
        for label, script in self.scripts.items():
            key = (self.node.name, label)
            fires[key] = fires.get(key, 0) + script.attachment.program.run_count
        return fires

    # -- introspection --------------------------------------------------------------

    def counter(self, label: str) -> int:
        script = self.scripts.get(label)
        return script.counter_value() if script else 0

    def histogram(self, label: str) -> List[int]:
        script = self.scripts.get(label)
        return script.histogram() if script else []

    def dropped_records(self) -> int:
        return self.ring.total_dropped if self.ring is not None else 0

    def __repr__(self) -> str:
        return f"<Agent {self.node.name} scripts={list(self.scripts)}>"
