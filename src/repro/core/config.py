"""Control-plane configuration objects (§III-D: "highly modularized
control package, which includes the tracing rules, tracepoint
locations, actions and global configurations").

A :class:`TracingSpec` is what the user gives the dispatcher; the
dispatcher expands it into per-node :class:`ControlPackage` objects.
All of it is plain data -- serializable to the "formatted configuration
files" the paper's dispatcher emits (see :meth:`to_config_dict`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.addressing import IPv4Address
from repro.net.packet import IPPROTO_TCP, IPPROTO_UDP

_tracepoint_id_counter = itertools.count(1)


class ConfigError(ValueError):
    """Malformed tracing configuration."""


@dataclass
class FilterRule:
    """Which packets a script matches; None fields are wildcards.

    Mirrors the paper's example inputs: "the containerized application
    source IP, destination IP, source port, destination port, etc."
    IP matches may be narrowed to prefixes (``src_prefix_len`` /
    ``dst_prefix_len``), compiled to mask-and-compare instructions.
    """

    src_ip: Optional[IPv4Address] = None
    dst_ip: Optional[IPv4Address] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    protocol: Optional[int] = None  # IPPROTO_TCP / IPPROTO_UDP
    ethertype: Optional[int] = None
    src_prefix_len: int = 32
    dst_prefix_len: int = 32

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if port is not None and not 0 < port < 65536:
                raise ConfigError(f"port out of range: {port}")
        if self.protocol is not None and self.protocol not in (IPPROTO_TCP, IPPROTO_UDP):
            raise ConfigError(f"unsupported protocol {self.protocol}")
        for prefix in (self.src_prefix_len, self.dst_prefix_len):
            if not 0 <= prefix <= 32:
                raise ConfigError(f"prefix length out of range: {prefix}")

    @classmethod
    def for_flow(
        cls,
        src_ip: IPv4Address,
        dst_ip: IPv4Address,
        dst_port: int,
        protocol: int = IPPROTO_UDP,
    ) -> "FilterRule":
        return cls(src_ip=src_ip, dst_ip=dst_ip, dst_port=dst_port, protocol=protocol)

    def matches_everything(self) -> bool:
        return all(
            value is None
            for value in (
                self.src_ip,
                self.dst_ip,
                self.src_port,
                self.dst_port,
                self.protocol,
                self.ethertype,
            )
        )


# Trace-ID location modes the compiler knows how to read back.
ID_MODE_NONE = "none"
ID_MODE_UDP_TRAILER = "udp-trailer"
ID_MODE_TCP_OPTION = "tcp-option"


@dataclass
class TracepointSpec:
    """Where to attach: node + hook (+ VXLAN stripping + ID location).

    ``hook`` uses the probe syntax: ``dev:vnet0``,
    ``kprobe:udp_send_skb``, ``kretprobe:tcp_recvmsg`` ...
    """

    node: str
    hook: str
    strip_vxlan: bool = False
    id_mode: str = ID_MODE_UDP_TRAILER
    label: str = ""
    tracepoint_id: int = field(default_factory=lambda: next(_tracepoint_id_counter))

    def __post_init__(self) -> None:
        if ":" not in self.hook:
            raise ConfigError(f"hook {self.hook!r} must be '<kind>:<target>'")
        if self.id_mode not in (ID_MODE_NONE, ID_MODE_UDP_TRAILER, ID_MODE_TCP_OPTION):
            raise ConfigError(f"unknown id_mode {self.id_mode!r}")
        if not self.label:
            self.label = f"{self.node}:{self.hook}"


@dataclass
class ActionSpec:
    """What a matching script does.

    * record -- build a trace record (ID, timestamp, length, CPU) and
      stream it out through the perf buffer;
    * count -- bump a per-CPU counter map (cheap rate accounting);
    * size_histogram -- log2-bucket the packet length into a per-CPU
      histogram map, entirely in kernel (BCC ``lhist`` style): a size
      distribution with zero per-packet records;
    * sample_shift -- when > 0, record/count only ~1/2^n of matching
      packets, decided in-program via ``get_prandom_u32`` (overhead
      control for very hot tracepoints).
    """

    record: bool = True
    count: bool = False
    size_histogram: bool = False
    sample_shift: int = 0

    def __post_init__(self) -> None:
        if not (self.record or self.count or self.size_histogram):
            raise ConfigError("an action must record, count, or histogram")
        if not 0 <= self.sample_shift <= 16:
            raise ConfigError(f"sample_shift out of range: {self.sample_shift}")


# Ring-buffer overflow degradation policies (docs/FAULTS.md).
RING_POLICY_DROP_NEWEST = "drop-newest"
RING_POLICY_DROP_OLDEST = "drop-oldest"
RING_POLICY_SAMPLE = "sample"
RING_POLICIES = (RING_POLICY_DROP_NEWEST, RING_POLICY_DROP_OLDEST, RING_POLICY_SAMPLE)


@dataclass
class GlobalConfig:
    """§III-D "global information like the database configuration"."""

    table_prefix: str = "vnettracer"
    ring_buffer_bytes: int = 64 * 1024
    flush_interval_ns: int = 10_000_000  # 10 ms
    # Strict rings raise RingBufferFull on overflow instead of silently
    # dropping (the drop counter still increments either way).
    ring_strict: bool = False
    online_collection: bool = False
    heartbeat_interval_ns: int = 100_000_000  # 100 ms
    control_latency_ns: int = 200_000  # dispatcher -> agent delivery
    jit: bool = True

    # Resilient delivery (docs/FAULTS.md).  ``*_max_attempts`` counts
    # every transmission including the first; 1 disables retries.  Backoff
    # before attempt N (N >= 2) is min(base * 2**(N-2), cap) on top of
    # the ack timeout.
    deploy_max_attempts: int = 4
    deploy_ack_timeout_ns: int = 1_000_000  # 1 ms
    deploy_backoff_base_ns: int = 500_000
    deploy_backoff_cap_ns: int = 8_000_000
    ship_max_attempts: int = 4
    ship_ack_timeout_ns: int = 2_000_000  # 2 ms
    ship_backoff_base_ns: int = 1_000_000
    ship_backoff_cap_ns: int = 16_000_000

    # Ring-buffer degradation policy on overflow: "drop-newest" (the
    # classic behaviour: the arriving record is rejected), "drop-oldest"
    # (evict buffered records to make room), or "sample" (admit the
    # arriving record with probability ``ring_sample_prob`` once full).
    ring_policy: str = RING_POLICY_DROP_NEWEST
    ring_sample_prob: float = 0.5

    # The paper's footnote 1: "the buffer size range is from 32 bytes to
    # 128k-16 bytes" (a kmalloc limitation).
    MIN_RING_BYTES = 32
    MAX_RING_BYTES = 128 * 1024 - 16

    def __post_init__(self) -> None:
        if not self.MIN_RING_BYTES <= self.ring_buffer_bytes <= self.MAX_RING_BYTES:
            raise ConfigError(
                f"ring buffer size {self.ring_buffer_bytes} outside "
                f"[{self.MIN_RING_BYTES}, {self.MAX_RING_BYTES}]"
            )
        for name in ("deploy_max_attempts", "ship_max_attempts"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        for name in (
            "deploy_ack_timeout_ns", "deploy_backoff_base_ns",
            "deploy_backoff_cap_ns", "ship_ack_timeout_ns",
            "ship_backoff_base_ns", "ship_backoff_cap_ns",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        if self.ring_policy not in RING_POLICIES:
            raise ConfigError(
                f"unknown ring_policy {self.ring_policy!r} "
                f"(choose from {sorted(RING_POLICIES)})"
            )
        if not 0.0 <= self.ring_sample_prob <= 1.0:
            raise ConfigError(
                f"ring_sample_prob must be in [0, 1], got {self.ring_sample_prob}"
            )


@dataclass
class TracingSpec:
    """Everything the user asks for in one deployment."""

    rule: FilterRule
    tracepoints: List[TracepointSpec]
    action: ActionSpec = field(default_factory=ActionSpec)
    global_config: GlobalConfig = field(default_factory=GlobalConfig)

    def __post_init__(self) -> None:
        if not self.tracepoints:
            raise ConfigError("a tracing spec needs at least one tracepoint")
        labels = [tp.label for tp in self.tracepoints]
        if len(set(labels)) != len(labels):
            raise ConfigError(f"duplicate tracepoint labels: {labels}")

    def tracepoints_for(self, node: str) -> List[TracepointSpec]:
        return [tp for tp in self.tracepoints if tp.node == node]

    def nodes(self) -> List[str]:
        seen: Dict[str, None] = {}
        for tp in self.tracepoints:
            seen.setdefault(tp.node, None)
        return list(seen)

    def label_of(self, tracepoint_id: int) -> str:
        for tp in self.tracepoints:
            if tp.tracepoint_id == tracepoint_id:
                return tp.label
        return f"tracepoint-{tracepoint_id}"


@dataclass
class ControlPackage:
    """What the dispatcher actually ships to one agent."""

    node: str
    rule: FilterRule
    tracepoints: List[TracepointSpec]
    action: ActionSpec
    global_config: GlobalConfig

    def to_config_dict(self) -> dict:
        """The 'formatted configuration file' representation."""
        return {
            "node": self.node,
            "rule": {
                "src_ip": str(self.rule.src_ip) if self.rule.src_ip else None,
                "dst_ip": str(self.rule.dst_ip) if self.rule.dst_ip else None,
                "src_port": self.rule.src_port,
                "dst_port": self.rule.dst_port,
                "protocol": self.rule.protocol,
                "ethertype": self.rule.ethertype,
            },
            "tracepoints": [
                {
                    "hook": tp.hook,
                    "id": tp.tracepoint_id,
                    "label": tp.label,
                    "strip_vxlan": tp.strip_vxlan,
                    "id_mode": tp.id_mode,
                }
                for tp in self.tracepoints
            ],
            "action": {"record": self.action.record, "count": self.action.count},
            "global": {
                "table_prefix": self.global_config.table_prefix,
                "ring_buffer_bytes": self.global_config.ring_buffer_bytes,
                "flush_interval_ns": self.global_config.flush_interval_ns,
                "online": self.global_config.online_collection,
            },
        }
