"""The on-wire trace record format.

A record is what one eBPF script invocation writes through
``perf_event_output``: exactly 24 little-endian bytes (the layout the
compiled programs build on their stack frame):

====== ====== ====================================================
offset size   field
====== ====== ====================================================
0      u32    trace_id        -- the in-packet ID (0 if none)
4      u32    tracepoint_id   -- which attached script produced it
8      u64    timestamp_ns    -- bpf_ktime_get_ns() on that node
16     u32    packet_len      -- wire length at that point
20     u32    cpu             -- smp_processor_id()
====== ====== ====================================================
"""

from __future__ import annotations

import struct
from typing import NamedTuple

RECORD_STRUCT = struct.Struct("<IIQII")
RECORD_BYTES = RECORD_STRUCT.size  # 24

assert RECORD_BYTES == 24


class TraceRecord(NamedTuple):
    trace_id: int
    tracepoint_id: int
    timestamp_ns: int
    packet_len: int
    cpu: int

    def pack(self) -> bytes:
        return RECORD_STRUCT.pack(
            self.trace_id, self.tracepoint_id, self.timestamp_ns, self.packet_len, self.cpu
        )

    @classmethod
    def unpack(cls, data: bytes) -> "TraceRecord":
        if len(data) != RECORD_BYTES:
            raise ValueError(f"trace record must be {RECORD_BYTES} bytes, got {len(data)}")
        return cls(*RECORD_STRUCT.unpack(data))

def unpack_batch(batch: "list[bytes]") -> "list[TraceRecord]":
    """Decode a whole flush batch in one pass.

    One ``iter_unpack`` over the joined bytes replaces a per-record
    ``unpack`` call; flush batches are hundreds of records, so the agent
    collection path uses this instead of looping ``TraceRecord.unpack``.
    """
    return [TraceRecord(*fields) for fields in RECORD_STRUCT.iter_unpack(b"".join(batch))]


# Stack frame offsets used by the compiler (relative to R10).
FRAME_OFF_TRACE_ID = -24
FRAME_OFF_TRACEPOINT_ID = -20
FRAME_OFF_TIMESTAMP = -16
FRAME_OFF_LEN = -8
FRAME_OFF_CPU = -4
FRAME_BASE = -24
