"""vNetTracer: the paper's contribution.

The pipeline mirrors Fig. 2 of the paper:

* users describe *what* to trace as a :class:`~repro.core.config.TracingSpec`
  (filter rules + tracepoints + actions + global config);
* the :class:`~repro.core.dispatcher.ControlDataDispatcher` on the
  master node formats control packages and ships them to per-node
  :class:`~repro.core.agent.Agent` daemons;
* each agent *compiles the rules into real eBPF bytecode*
  (:mod:`repro.core.compiler`), verifies and attaches the programs, and
  buffers the perf-event records in a kernel ring buffer
  (:mod:`repro.core.ringbuffer`, the mmap'd /proc buffer of §III-C);
* the :class:`~repro.core.collector.RawDataCollector` gathers batches
  into the :class:`~repro.core.tracedb.TraceDB` (the InfluxDB stand-in)
  and doubles as the heartbeat monitor;
* :mod:`repro.core.clocksync` estimates per-node clock skew with
  Cristian's algorithm so cross-machine latencies align;
* :mod:`repro.core.metrics` computes throughput, latency,
  decomposition, jitter, and loss from the stored records.

:class:`~repro.core.vnettracer.VNetTracer` wires it all together.
"""

from repro.core.config import (
    ActionSpec,
    ControlPackage,
    FilterRule,
    GlobalConfig,
    TracepointSpec,
    TracingSpec,
)
from repro.core.metrics import (
    decompose_latency,
    latency_between,
    packet_loss,
    throughput_at,
)
from repro.core.reports import CollectReport, DeployReport
from repro.core.session import TracerSession
from repro.core.tracedb import TraceDB
from repro.core.vnettracer import VNetTracer

__all__ = [
    "VNetTracer",
    "TracerSession",
    "TracingSpec",
    "FilterRule",
    "TracepointSpec",
    "ActionSpec",
    "GlobalConfig",
    "ControlPackage",
    "DeployReport",
    "CollectReport",
    "TraceDB",
    "throughput_at",
    "latency_between",
    "decompose_latency",
    "packet_loss",
]
