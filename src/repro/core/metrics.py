"""Network performance metrics computed from trace records (§III-D).

All functions operate on the :class:`~repro.core.tracedb.TraceDB`
after collection, i.e. they are the paper's "additional calculation ...
based on those raw tracing data":

* :func:`throughput_at` -- bytes/time at one tracepoint, subtracting
  the 4-byte trace ID per packet exactly as the paper's formula
  sum(S_i - S_ID) / (T_N - T_1) does;
* :func:`latency_between` -- per-trace-ID deltas between two
  tracepoints, with cross-node skew already applied by the DB;
* :func:`decompose_latency` -- the end-to-end decomposition across an
  ordered tracepoint chain (Fig. 6 / Fig. 9a / Fig. 11);
* :func:`jitter_of` -- consecutive-latency deltas (§III-D);
* :func:`packet_loss` -- count/rate between two tracepoints.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, NamedTuple, Optional, Sequence

from repro.core.tracedb import TraceDB
from repro.workloads.stats import LatencySummary, summarize_latencies

TRACE_ID_BYTES = 4


class ThroughputResult(NamedTuple):
    bits_per_second: float
    packets: int
    payload_bytes: int
    window_ns: int


class LossResult(NamedTuple):
    sent: int
    received: int
    lost: int
    rate: float


class SegmentLatency(NamedTuple):
    """One hop of a decomposition."""

    from_label: str
    to_label: str
    latencies_ns: List[int]

    def summary(self) -> LatencySummary:
        return summarize_latencies(self.latencies_ns)


def throughput_at(
    db: TraceDB,
    label: str,
    subtract_id_bytes: bool = True,
    start_ns: Optional[int] = None,
    end_ns: Optional[int] = None,
) -> ThroughputResult:
    """Throughput observed at one tracepoint over its record window.

    Iterates the table's columns directly: the payload sum runs over the
    packet-length column and the window comes from the timestamp index
    (no row materialization, no per-call sort)."""
    columns = db.columns(label)
    overhead = TRACE_ID_BYTES if subtract_id_bytes else 0
    if columns is None:
        return ThroughputResult(0.0, 0, 0, 0)
    if start_ns is None and end_ns is None:
        count = len(columns.timestamp_ns)
        if count < 2:
            return ThroughputResult(0.0, count, 0, 0)
        # Fast path: when every packet clears the overhead (the common
        # case -- MTU-sized records), the per-element branch collapses
        # to two C-speed column reductions.
        if min(columns.packet_len) > overhead:
            payload = sum(columns.packet_len) - overhead * len(columns.packet_len)
        else:
            payload = sum(
                length - overhead for length in columns.packet_len if length > overhead
            )
        low, high = db.ts_minmax(label)
    else:
        count = payload = 0
        low = high = None
        for ts, length in zip(columns.timestamp_ns, columns.packet_len):
            if (start_ns is not None and ts < start_ns) or (
                end_ns is not None and ts > end_ns
            ):
                continue
            count += 1
            if length > overhead:
                payload += length - overhead
            if low is None or ts < low:
                low = ts
            if high is None or ts > high:
                high = ts
        if count < 2:
            return ThroughputResult(0.0, count, 0, 0)
    window = high - low
    if window <= 0:
        return ThroughputResult(0.0, count, payload, 0)
    return ThroughputResult(payload * 8 * 1e9 / window, count, payload, window)


def latency_between(db: TraceDB, from_label: str, to_label: str) -> List[int]:
    """Per-packet latency between two tracepoints, matched by trace ID.

    Timestamps are already master-aligned (DB applies the Cristian
    skew), so cross-node pairs subtract directly:
    dT = t2 - t1 (+ skew), §III-D."""
    first = db.first_ts_at(from_label)
    second = db.first_ts_at(to_label)
    second_get = second.get
    return [
        ts_b - ts_a
        for trace_id, ts_a in first.items()
        if (ts_b := second_get(trace_id)) is not None
    ]


def latency_pairs(db: TraceDB, from_label: str, to_label: str) -> List[tuple]:
    """(start_timestamp, latency) pairs ordered by start time -- the
    per-packet-index series of Fig. 11."""
    first = db.first_ts_at(from_label)
    second = db.first_ts_at(to_label)
    second_get = second.get
    pairs = [
        (ts_a, ts_b - ts_a)
        for trace_id, ts_a in first.items()
        if (ts_b := second_get(trace_id)) is not None
    ]
    pairs.sort()
    return pairs


def decompose_latency(db: TraceDB, chain: Sequence[str]) -> List[SegmentLatency]:
    """End-to-end latency decomposition along an ordered tracepoint
    chain; only traces observed at every point contribute (the data
    cleaning step of §III-C)."""
    if len(chain) < 2:
        raise ValueError("decomposition needs at least two tracepoints")
    complete_ids = set(db.complete_traces(chain))
    per_label: Dict[str, Dict[int, int]] = {
        label: {
            trace_id: ts
            for trace_id, ts in db.first_ts_at(label).items()
            if trace_id in complete_ids
        }
        for label in chain
    }
    segments = []
    for from_label, to_label in zip(chain, chain[1:]):
        from_ts = per_label[from_label]
        to_ts = per_label[to_label]
        ordered = sorted(from_ts.keys() & to_ts.keys(), key=from_ts.__getitem__)
        latencies = [to_ts[trace_id] - from_ts[trace_id] for trace_id in ordered]
        segments.append(SegmentLatency(from_label, to_label, latencies))
    return segments


def jitter_of(latencies: Sequence[int]) -> List[int]:
    """Jitter as defined in §III-D: dT_{i+1} - dT_i."""
    return [latencies[i + 1] - latencies[i] for i in range(len(latencies) - 1)]


def packet_loss(db: TraceDB, from_label: str, to_label: str) -> LossResult:
    """N_loss = N_i - N_j and the loss rate between two points."""
    sent = db.count(from_label)
    received = db.count(to_label)
    lost = max(0, sent - received)
    rate = lost / sent if sent else 0.0
    return LossResult(sent, received, lost, rate)


def per_cpu_distribution(db: TraceDB, label: str) -> Dict[int, float]:
    """Fraction of records per CPU at a tracepoint (Fig. 13a).

    Counts straight off the CPU column."""
    columns = db.columns(label)
    if columns is None or not len(columns.cpu):
        return {}
    counts = Counter(columns.cpu)
    total = len(columns.cpu)
    return {cpu: count / total for cpu, count in sorted(counts.items())}


def event_rate(db: TraceDB, label: str) -> float:
    """Records per second at a tracepoint (Fig. 13a's execution rate).

    The window comes from the table's timestamp index -- no row
    materialization or per-call sort."""
    columns = db.columns(label)
    if columns is None or len(columns.timestamp_ns) < 2:
        return 0.0
    low, high = db.ts_minmax(label)
    window = high - low
    if window <= 0:
        return 0.0
    return (len(columns.timestamp_ns) - 1) * 1e9 / window
