"""The control data dispatcher (master node, §III-A).

Takes a user's :class:`~repro.core.config.TracingSpec`, formats it into
per-node :class:`~repro.core.config.ControlPackage` objects ("formatted
configuration files in control packages and tracing scripts") and ships
them to the agents over a simulated control channel.  Re-deploying a
new spec at runtime reconfigures the agents without restarting the
monitored network -- the programmability claim of §III-D.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, TYPE_CHECKING

from repro.core.config import ControlPackage, TracingSpec
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.agent import Agent


class DispatchError(RuntimeError):
    """A spec references a node with no registered agent."""


class ControlDataDispatcher:
    """Formats and distributes control packages."""

    def __init__(self, engine: Engine, master_name: str = "master"):
        self.engine = engine
        self.master_name = master_name
        self.agents: Dict[str, "Agent"] = {}
        self.deployments = 0
        # (dispatch_ns, installed_ns, node) per delivered control
        # package -- the dispatcher->agent legs of the control-plane
        # timeline (docs/TIMELINES.md).
        self.deploy_log: List[Tuple[int, int, str]] = []

    def register_agent(self, agent: "Agent") -> None:
        self.agents[agent.node.name] = agent

    def build_packages(self, spec: TracingSpec) -> List[ControlPackage]:
        packages = []
        for node in spec.nodes():
            packages.append(
                ControlPackage(
                    node=node,
                    rule=spec.rule,
                    tracepoints=spec.tracepoints_for(node),
                    action=spec.action,
                    global_config=spec.global_config,
                )
            )
        return packages

    def deploy(self, spec: TracingSpec) -> List[ControlPackage]:
        """Ship the spec; agents install after the control latency."""
        packages = self.build_packages(spec)
        for package in packages:
            agent = self.agents.get(package.node)
            if agent is None:
                raise DispatchError(
                    f"no agent registered for node {package.node!r} "
                    f"(have {sorted(self.agents)})"
                )
            self.engine.schedule(
                spec.global_config.control_latency_ns,
                self._deliver,
                agent,
                package,
                self.engine.now,
            )
        self.deployments += 1
        return packages

    def _deliver(self, agent: "Agent", package: ControlPackage, sent_ns: int) -> None:
        agent.install(package)
        self.deploy_log.append((sent_ns, self.engine.now, package.node))

    def undeploy_all(self) -> None:
        for agent in self.agents.values():
            agent.teardown()

    def __repr__(self) -> str:
        return f"<ControlDataDispatcher agents={sorted(self.agents)}>"
