"""The control data dispatcher (master node, §III-A).

Takes a user's :class:`~repro.core.config.TracingSpec`, formats it into
per-node :class:`~repro.core.config.ControlPackage` objects ("formatted
configuration files in control packages and tracing scripts") and ships
them to the agents over a simulated control channel.  Re-deploying a
new spec at runtime reconfigures the agents without restarting the
monitored network -- the programmability claim of §III-D.

Delivery is resilient (docs/FAULTS.md): every package is stamped with
a monotone deploy ID, the target agent acks installation, and an
unacked package is retransmitted after an ack timeout with capped
exponential backoff until the attempt budget
(``GlobalConfig.deploy_max_attempts``) runs out.  Installation is
idempotent on the agent side (duplicate deliveries ack without
reinstalling; stale ones are ignored), so retries and fault-injected
duplicates are safe.  :class:`DispatchError` is raised synchronously
for a spec naming an unregistered node, and asynchronously (out of
``engine.run()``) only once a package exhausts its retry budget while
retries are enabled; with retries disabled (``deploy_max_attempts=1``)
a lost package is accounted in the report and the fault counters
instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.config import ControlPackage, GlobalConfig, TracingSpec
from repro.core.reports import DeployReport
from repro.faults.metrics import FaultMetrics
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.agent import Agent
    from repro.faults.inject import FaultInjector


class DispatchError(RuntimeError):
    """A spec references a node with no registered agent, or a package
    exhausted its delivery retry budget."""


class _PendingDelivery:
    """Retry state for one package of one deploy."""

    __slots__ = ("package", "agent", "report", "cfg", "attempts", "acked",
                 "failed", "timer")

    def __init__(self, package: ControlPackage, agent: "Agent",
                 report: DeployReport, cfg: GlobalConfig):
        self.package = package
        self.agent = agent
        self.report = report
        self.cfg = cfg
        self.attempts = 0
        self.acked = False
        self.failed = False
        self.timer = None


class ControlDataDispatcher:
    """Formats and distributes control packages."""

    def __init__(
        self,
        engine: Engine,
        master_name: str = "master",
        registry: Optional[MetricsRegistry] = None,
    ):
        self.engine = engine
        self.master_name = master_name
        self.agents: Dict[str, "Agent"] = {}
        self.deployments = 0
        self.injector: "Optional[FaultInjector]" = None
        self.fault_metrics = FaultMetrics(registry)
        # (dispatch_ns, installed_ns, node) per delivered control
        # package -- the dispatcher->agent legs of the control-plane
        # timeline (docs/TIMELINES.md).
        self.deploy_log: List[Tuple[int, int, str]] = []
        self._deploy_ids = 0
        self._pending: Dict[Tuple[int, str], _PendingDelivery] = {}

    def register_agent(self, agent: "Agent") -> None:
        self.agents[agent.node.name] = agent

    def set_fault_injector(self, injector: "Optional[FaultInjector]") -> None:
        """Route control-channel messages through a fault injector."""
        self.injector = injector

    def build_packages(self, spec: TracingSpec) -> List[ControlPackage]:
        packages = []
        for node in spec.nodes():
            packages.append(
                ControlPackage(
                    node=node,
                    rule=spec.rule,
                    tracepoints=spec.tracepoints_for(node),
                    action=spec.action,
                    global_config=spec.global_config,
                )
            )
        return packages

    def deploy(self, spec: TracingSpec) -> DeployReport:
        """Ship the spec; agents install after the control latency.

        Returns a :class:`DeployReport` (which still iterates and
        compares like the old package list).  Attempt / ack fields fill
        in as the engine runs."""
        packages = self.build_packages(spec)
        for package in packages:
            if package.node not in self.agents:
                raise DispatchError(
                    f"no agent registered for node {package.node!r} "
                    f"(have {sorted(self.agents)})"
                )
        self._deploy_ids += 1
        deploy_id = self._deploy_ids
        report = DeployReport(packages=packages, deploy_id=deploy_id)
        cfg = spec.global_config
        for package in packages:
            # A newer deploy supersedes any still-retrying older one for
            # the same node; stop its timer so it cannot fail later.
            for (old_id, node), old in list(self._pending.items()):
                if node == package.node and not old.acked and not old.failed:
                    old.failed = True
                    if old.timer is not None:
                        old.timer.cancel()
                    del self._pending[(old_id, node)]
            state = _PendingDelivery(package, self.agents[package.node], report, cfg)
            self._pending[(deploy_id, package.node)] = state
            self._attempt(deploy_id, state)
        self.deployments += 1
        return report

    # -- delivery + retry ---------------------------------------------------

    def _attempt(self, deploy_id: int, state: _PendingDelivery) -> None:
        state.attempts += 1
        state.report.attempts += 1
        if state.attempts > 1:
            state.report.retries += 1
            self.fault_metrics.deploy_retry(state.package.node)
        self.fault_metrics.deploy_attempt(state.package.node)
        node = state.package.node
        state.report.attempts_by_node[node] = state.attempts

        latency = state.cfg.control_latency_ns
        decision = (
            self.injector.control_decision() if self.injector is not None else None
        )
        sent_ns = self.engine.now
        if decision is None or not decision.drop:
            delay = latency + (decision.extra_delay_ns if decision else 0)
            self.engine.schedule(delay, self._deliver, deploy_id, state, sent_ns)
            if decision is not None and decision.duplicate:
                self.engine.schedule(
                    delay + latency, self._deliver, deploy_id, state, sent_ns)
        state.timer = self.engine.schedule(
            latency + state.cfg.deploy_ack_timeout_ns + self._backoff(state),
            self._check_ack, deploy_id, state,
        )

    def _backoff(self, state: _PendingDelivery) -> int:
        """Capped exponential backoff added before the *next* retry."""
        if state.attempts < 2:
            return 0
        raw = state.cfg.deploy_backoff_base_ns * (2 ** (state.attempts - 2))
        return min(raw, state.cfg.deploy_backoff_cap_ns)

    def _deliver(self, deploy_id: int, state: _PendingDelivery, sent_ns: int) -> None:
        if state.failed:
            return  # superseded by a newer deploy
        agent = state.agent
        if getattr(agent, "crashed", False):
            return  # a crashed agent neither installs nor acks
        status = agent.install(state.package, deploy_id=deploy_id)
        if status == "installed":
            self.deploy_log.append((sent_ns, self.engine.now, state.package.node))
        if status in ("installed", "duplicate"):
            # The ack crosses the same lossy control channel.
            decision = (
                self.injector.control_decision()
                if self.injector is not None else None
            )
            if decision is None or not decision.drop:
                delay = state.cfg.control_latency_ns + (
                    decision.extra_delay_ns if decision else 0)
                self.engine.schedule(delay, self._on_ack, deploy_id, state)

    def _on_ack(self, deploy_id: int, state: _PendingDelivery) -> None:
        if state.acked or state.failed:
            return
        state.acked = True
        if state.timer is not None:
            state.timer.cancel()
            state.timer = None
        state.report.acked_nodes.append(state.package.node)
        self._pending.pop((deploy_id, state.package.node), None)

    def _check_ack(self, deploy_id: int, state: _PendingDelivery) -> None:
        if state.acked or state.failed:
            return
        if state.attempts < state.cfg.deploy_max_attempts:
            self._attempt(deploy_id, state)
            return
        state.failed = True
        state.report.failed_nodes.append(state.package.node)
        self._pending.pop((deploy_id, state.package.node), None)
        if state.cfg.deploy_max_attempts > 1:
            # Retries were enabled and the budget is spent: fail loudly
            # (propagates out of engine.run()).  With retries disabled
            # the loss is visible in the report and fault counters.
            raise DispatchError(
                f"control package for {state.package.node!r} unacked after "
                f"{state.attempts} attempts (deploy {deploy_id})"
            )

    def undeploy_all(self) -> None:
        for agent in self.agents.values():
            agent.teardown()

    def __repr__(self) -> str:
        return f"<ControlDataDispatcher agents={sorted(self.agents)}>"
