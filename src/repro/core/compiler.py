"""Compile tracing configuration into eBPF bytecode.

This is the heart of vNetTracer's programmability: a
:class:`~repro.core.config.FilterRule` + :class:`TracepointSpec` +
:class:`ActionSpec` become a real program for :mod:`repro.ebpf`'s VM --
filter comparisons against context fields, trace-ID extraction from the
packet *bytes* (UDP trailer at ``data_end - 4`` or the TCP option just
before the payload), a per-CPU counter bump, and a 24-byte record
written through ``perf_event_output``.

Programs the compiler emits pass the verifier (DAG control flow, all
registers initialized, frame-bounded stack accesses) -- tests assert
this for every rule shape.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core import records
from repro.core.config import (
    ActionSpec,
    FilterRule,
    ID_MODE_TCP_OPTION,
    ID_MODE_UDP_TRAILER,
    TracepointSpec,
)
from repro.ebpf import context as ctx
from repro.ebpf.assembler import Assembler
from repro.ebpf.helpers import (
    BPF_F_CURRENT_CPU,
    HELPER_GET_PRANDOM_U32,
    HELPER_GET_SMP_PROCESSOR_ID,
    HELPER_KTIME_GET_NS,
    HELPER_MAP_LOOKUP_ELEM,
    HELPER_PERF_EVENT_OUTPUT,
)
from repro.ebpf.isa import R0, R1, R2, R3, R4, R5, R6, R7, R8, R10
from repro.ebpf.maps import BPFMap, PerCPUArrayMap, PerfEventArray
from repro.ebpf.vm import BPFProgram
from repro.net.packet import TCPOPT_TRACE_ID

MISS = "miss"

# Stack slots (outside the record frame) for map keys.
COUNTER_KEY_OFF = -32
HIST_KEY_OFF = -40

# The log2 size histogram covers lengths 0 .. 65535 -> 17 buckets.
HISTOGRAM_BUCKETS = 17


def compile_script(
    rule: FilterRule,
    tracepoint: TracepointSpec,
    action: ActionSpec,
    perf_map: Optional[PerfEventArray] = None,
    counter_map: Optional[PerCPUArrayMap] = None,
    histogram_map: Optional[PerCPUArrayMap] = None,
    jit: bool = True,
) -> Tuple[BPFProgram, Dict[int, BPFMap]]:
    """Build (program, fd->map table) for one tracepoint."""
    asm = Assembler()
    maps: Dict[int, BPFMap] = {}

    asm.mov_reg(R6, R1)  # keep ctx in a callee-ish register

    comparisons = _emit_filter(asm, rule)

    sampled = action.sample_shift > 0
    if sampled:
        # Trace ~1/2^n of matching packets: prandom & (2^n - 1) == 0.
        asm.call(HELPER_GET_PRANDOM_U32)
        asm.and_imm(R0, (1 << action.sample_shift) - 1)
        asm.jne_imm(R0, 0, "skip_actions")

    _emit_trace_id(asm, tracepoint.id_mode)  # leaves the ID in R8

    if action.count:
        if counter_map is None:
            raise ValueError("count action requires a counter map")
        maps[counter_map.fd] = counter_map
        _emit_count(asm, counter_map)

    if action.size_histogram:
        if histogram_map is None:
            raise ValueError("size_histogram action requires a histogram map")
        maps[histogram_map.fd] = histogram_map
        _emit_size_histogram(asm, histogram_map)

    if action.record:
        if perf_map is None:
            raise ValueError("record action requires a perf event map")
        maps[perf_map.fd] = perf_map
        _emit_record(asm, tracepoint.tracepoint_id, perf_map)

    asm.mov_imm(R0, 1)
    asm.exit_()
    if sampled:
        asm.label("skip_actions")
        asm.mov_imm(R0, 2)  # matched but sampled out
        asm.exit_()
    if comparisons:
        # Only emit the miss block when some comparison can reach it;
        # the verifier (like the kernel's) rejects unreachable code.
        # (A /0 prefix rule emits no comparison at all.)
        asm.label(MISS)
        asm.mov_imm(R0, 0)
        asm.exit_()

    program = BPFProgram(
        asm.assemble(), maps=maps, name=f"trace:{tracepoint.label}", jit=jit
    )
    return program, maps


def _emit_filter(asm: Assembler, rule: FilterRule) -> int:
    """Compare context fields against the rule; jump to MISS on mismatch.
    Returns the number of comparisons emitted (0 for match-everything)."""
    emitted = 0
    if rule.ethertype is not None:
        asm.ldx_h(R2, R6, ctx.OFF_PROTOCOL)
        asm.jne_imm(R2, rule.ethertype, MISS)
        emitted += 1
    if rule.protocol is not None:
        asm.ldx_b(R2, R6, ctx.OFF_IP_PROTO)
        asm.jne_imm(R2, rule.protocol, MISS)
        emitted += 1
    if rule.src_ip is not None:
        emitted += _emit_ip_match(asm, ctx.OFF_SRC_IP, rule.src_ip.value,
                                  rule.src_prefix_len)
    if rule.dst_ip is not None:
        emitted += _emit_ip_match(asm, ctx.OFF_DST_IP, rule.dst_ip.value,
                                  rule.dst_prefix_len)
    if rule.src_port is not None:
        asm.ldx_h(R2, R6, ctx.OFF_SRC_PORT)
        asm.jne_imm(R2, rule.src_port, MISS)
        emitted += 1
    if rule.dst_port is not None:
        asm.ldx_h(R2, R6, ctx.OFF_DST_PORT)
        asm.jne_imm(R2, rule.dst_port, MISS)
        emitted += 1
    return emitted


def _emit_ip_match(asm: Assembler, field_off: int, ip_value: int, prefix_len: int) -> int:
    """Mask-and-compare an IPv4 field against ip/prefix; returns the
    number of comparisons emitted."""
    if prefix_len == 0:
        return 0  # /0 matches everything
    mask = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF
    asm.ldx_w(R2, R6, field_off)
    if prefix_len < 32:
        asm.mov32_imm(R3, mask)
        asm._alu(0x50, R2, 0x07, src=R3, use_reg=True)  # and r2, r3
    # 32-bit immediates are sign-extended by MOV; compare via a
    # register holding the zero-extended constant.
    asm.mov32_imm(R3, ip_value & mask)
    asm.jne_reg(R2, R3, MISS)
    return 1


def _emit_size_histogram(asm: Assembler, histogram_map: PerCPUArrayMap) -> None:
    """hist[log2(packet_len)] += 1, computed with an unrolled
    shift-and-accumulate (no loops: the control flow stays a DAG)."""
    asm.ldx_w(R2, R6, ctx.OFF_LEN)  # value being bucketed
    asm.mov_imm(R3, 0)  # bucket index
    for shift in (8, 4, 2, 1):
        skip = f"hist_skip_{shift}"
        asm.jlt_imm(R2, 1 << shift, skip)
        asm.rsh_imm(R2, shift)
        asm.add_imm(R3, shift)
        asm.label(skip)
    # values >= 2 land one bucket up (ceil-ish log2 of the leading bit);
    # bucket = index of the highest set bit + 1 for nonzero lengths.
    asm.jeq_imm(R2, 0, "hist_zero")
    asm.add_imm(R3, 1)
    asm.label("hist_zero")
    asm.stx_w(R10, R3, HIST_KEY_OFF)
    asm.ld_map_fd(R1, histogram_map.fd)
    asm.mov_reg(R2, R10)
    asm.add_imm(R2, HIST_KEY_OFF)
    asm.call(HELPER_MAP_LOOKUP_ELEM)
    asm.jeq_imm(R0, 0, "hist_done")
    asm.ldx_dw(R2, R0, 0)
    asm.add_imm(R2, 1)
    asm.stx_dw(R0, R2, 0)
    asm.label("hist_done")


def histogram_bucket(length: int) -> int:
    """Reference implementation of the in-program bucketing (tests and
    user-space decoding): bucket 0 holds length 0, bucket k holds
    lengths in [2^(k-1), 2^k)."""
    return length.bit_length()


def _emit_trace_id(asm: Assembler, id_mode: str) -> None:
    """Extract the in-packet trace ID into R8 (0 when absent).

    The ID is read from the serialized packet bytes -- the same bytes a
    kernel program would see -- via the context's data/data_end
    pointers.  Byte order: the load is little-endian over big-endian
    wire bytes; the value is therefore a fixed permutation of the
    embedded ID, identical at every tracepoint, which is all record
    correlation needs.
    """
    if id_mode == ID_MODE_UDP_TRAILER:
        # id = *(u32*)(data_end - 4), guarded by data_end - 4 >= data.
        asm.ldx_dw(R7, R6, ctx.OFF_DATA_END)
        asm.sub_imm(R7, 4)
        asm.ldx_dw(R2, R6, ctx.OFF_DATA)
        asm.mov_imm(R8, 0)
        asm.jgt_reg(R2, R7, "id_done")  # data > data_end-4: no room
        asm.ldx_w(R8, R7, 0)
        asm.label("id_done")
    elif id_mode == ID_MODE_TCP_OPTION:
        # The embed places NOP,NOP,kind,len,id as the last 8 option
        # bytes, i.e. the payload starts right after the id.  Check the
        # option kind byte at (payload_off - 6) before trusting it.
        asm.ldx_dw(R7, R6, ctx.OFF_DATA)
        asm.ldx_w(R2, R6, ctx.OFF_PAYLOAD_OFF)
        asm.add_reg(R7, R2)  # r7 = data + payload_off
        asm.mov_imm(R8, 0)
        asm.ldx_dw(R3, R6, ctx.OFF_DATA)
        asm.add_imm(R3, 6)
        asm.jgt_reg(R3, R7, "id_done")  # payload_off < 6: no option room
        asm.ldx_b(R2, R7, -6)
        asm.jne_imm(R2, TCPOPT_TRACE_ID, "id_done")
        asm.ldx_w(R8, R7, -4)
        asm.label("id_done")
    else:
        asm.mov_imm(R8, 0)


def _emit_count(asm: Assembler, counter_map: PerCPUArrayMap) -> None:
    """counter[0] += 1 on this CPU (lock-free per-CPU slot)."""
    asm.st_imm(4, R10, COUNTER_KEY_OFF, 0)  # key = 0
    asm.ld_map_fd(R1, counter_map.fd)
    asm.mov_reg(R2, R10)
    asm.add_imm(R2, COUNTER_KEY_OFF)
    asm.call(HELPER_MAP_LOOKUP_ELEM)
    asm.jeq_imm(R0, 0, "count_done")
    asm.ldx_dw(R2, R0, 0)
    asm.add_imm(R2, 1)
    asm.stx_dw(R0, R2, 0)
    asm.label("count_done")


def _emit_record(asm: Assembler, tracepoint_id: int, perf_map: PerfEventArray) -> None:
    """Build the 24-byte record on the stack and perf_event_output it."""
    asm.stx_w(R10, R8, records.FRAME_OFF_TRACE_ID)
    asm.mov_imm(R2, tracepoint_id)
    asm.stx_w(R10, R2, records.FRAME_OFF_TRACEPOINT_ID)
    asm.call(HELPER_KTIME_GET_NS)
    asm.stx_dw(R10, R0, records.FRAME_OFF_TIMESTAMP)
    asm.ldx_w(R2, R6, ctx.OFF_LEN)
    asm.stx_w(R10, R2, records.FRAME_OFF_LEN)
    asm.call(HELPER_GET_SMP_PROCESSOR_ID)
    asm.stx_w(R10, R0, records.FRAME_OFF_CPU)

    asm.mov_reg(R1, R6)
    asm.ld_map_fd(R2, perf_map.fd)
    asm.mov_imm(R3, BPF_F_CURRENT_CPU)
    asm.mov_reg(R4, R10)
    asm.add_imm(R4, records.FRAME_BASE)
    asm.mov_imm(R5, records.RECORD_BYTES)
    asm.call(HELPER_PERF_EVENT_OUTPUT)
