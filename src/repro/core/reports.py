"""Typed results for the redesigned deploy / collect APIs.

:meth:`ControlDataDispatcher.deploy` used to return a bare
``List[ControlPackage]`` and :meth:`RawDataCollector.collect_all_offline`
a bare ``int``; with retries and dedup in the pipeline those values no
longer tell the whole story.  :class:`DeployReport` and
:class:`CollectReport` carry the full accounting (attempts, retries,
acked agents, deduped batches) while remaining drop-in compatible with
the old return types: a ``DeployReport`` iterates, indexes, and
compares like the package list; a ``CollectReport`` compares, adds,
and formats like the record count.  Existing callers keep working
unmodified (see the API-migration note in the README).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.core.config import ControlPackage


@dataclass
class DeployReport:
    """Everything one :meth:`deploy` call did (quacks like the old
    ``List[ControlPackage]`` return value)."""

    packages: List[ControlPackage]
    deploy_id: int = 0
    attempts: int = 0  # total deliveries attempted, first sends included
    retries: int = 0  # attempts beyond the first, per package, summed
    acked_nodes: List[str] = field(default_factory=list)
    failed_nodes: List[str] = field(default_factory=list)
    attempts_by_node: Dict[str, int] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """Every package acked (meaningful once the engine has run)."""
        return len(self.acked_nodes) == len(self.packages) and not self.failed_nodes

    # -- list-of-packages compatibility ------------------------------------

    def __iter__(self) -> Iterator[ControlPackage]:
        return iter(self.packages)

    def __len__(self) -> int:
        return len(self.packages)

    def __getitem__(self, index):
        return self.packages[index]

    def __contains__(self, item) -> bool:
        return item in self.packages

    def __eq__(self, other) -> bool:
        if isinstance(other, DeployReport):
            return (
                self.packages == other.packages
                and self.deploy_id == other.deploy_id
                and self.attempts == other.attempts
                and self.retries == other.retries
                and self.acked_nodes == other.acked_nodes
                and self.failed_nodes == other.failed_nodes
            )
        if isinstance(other, (list, tuple)):
            return list(self.packages) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"<DeployReport id={self.deploy_id} packages={len(self.packages)} "
            f"attempts={self.attempts} retries={self.retries} "
            f"acked={self.acked_nodes} failed={self.failed_nodes}>"
        )


@dataclass
class CollectReport:
    """Everything one offline collection did (quacks like the old
    ``int`` record count)."""

    records: int = 0
    batches: int = 0
    records_by_node: Dict[str, int] = field(default_factory=dict)
    deduped_batches: int = 0
    skipped_nodes: List[str] = field(default_factory=list)  # crashed agents

    # -- int compatibility -------------------------------------------------

    def _as_int(self, other):
        if isinstance(other, CollectReport):
            return other.records
        if isinstance(other, (int, float)):
            return other
        return None

    def __eq__(self, other) -> bool:
        value = self._as_int(other)
        return NotImplemented if value is None else self.records == value

    def __lt__(self, other):
        value = self._as_int(other)
        return NotImplemented if value is None else self.records < value

    def __le__(self, other):
        value = self._as_int(other)
        return NotImplemented if value is None else self.records <= value

    def __gt__(self, other):
        value = self._as_int(other)
        return NotImplemented if value is None else self.records > value

    def __ge__(self, other):
        value = self._as_int(other)
        return NotImplemented if value is None else self.records >= value

    def __hash__(self) -> int:
        return hash(self.records)

    def __int__(self) -> int:
        return self.records

    def __index__(self) -> int:
        return self.records

    def __bool__(self) -> bool:
        return self.records > 0

    def __add__(self, other):
        value = self._as_int(other)
        return NotImplemented if value is None else self.records + value

    __radd__ = __add__

    def __sub__(self, other):
        value = self._as_int(other)
        return NotImplemented if value is None else self.records - value

    def __rsub__(self, other):
        value = self._as_int(other)
        return NotImplemented if value is None else value - self.records

    def __str__(self) -> str:
        return str(self.records)

    def __format__(self, spec: str) -> str:
        return format(self.records, spec)

    def __repr__(self) -> str:
        return (
            f"<CollectReport records={self.records} batches={self.batches} "
            f"deduped={self.deduped_batches} by_node={self.records_by_node}>"
        )


def merge_node_counts(into: Dict[str, int], node: str, count: int) -> None:
    """Accumulate ``count`` records for ``node`` in a report dict."""
    into[node] = into.get(node, 0) + count


__all__: Tuple[str, ...] = ("DeployReport", "CollectReport", "merge_node_counts")
