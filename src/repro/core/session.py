"""The fluent session builder: the blessed way to stand up a pipeline.

The §III-A walkthrough used to require touching five constructors
(engine, tracer, agents, synchronizer, spec).  A
:class:`TracerSession` expresses the same setup as one chain:

    session = (TracerSession(engine)
               .with_agent(host1.node)
               .with_agent(vm1.node)
               .with_clock_sync(host1.node, host1_ip, "dev:eth0",
                                vm1.node, vm1_ip, "dev:ens3")
               .with_fault_plan(FaultPlan(seed=7, ...)))   # optional
    report = session.deploy(spec)
    ... run the experiment ...
    collected = session.collect()

The session is a thin, eager front-end over
:class:`~repro.core.vnettracer.VNetTracer`: every ``with_*`` call
takes effect immediately on the underlying tracer (available as
``session.tracer``, or via :meth:`build`), so sessions compose freely
with code that still drives the tracer directly.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.clocksync import ClockSynchronizer
from repro.core.config import TracingSpec
from repro.core.reports import CollectReport, DeployReport
from repro.core.vnettracer import VNetTracer
from repro.faults.plan import FaultPlan
from repro.net.addressing import IPv4Address
from repro.net.stack import KernelNode
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Engine


class TracerSession:
    """Fluent builder / façade over :class:`VNetTracer`."""

    def __init__(
        self,
        engine: Optional[Engine] = None,
        master_name: str = "master",
        registry: Optional[MetricsRegistry] = None,
    ):
        self.engine = engine if engine is not None else Engine()
        self.tracer = VNetTracer(self.engine, master_name, registry=registry)
        self.syncs: Dict[str, ClockSynchronizer] = {}
        self.service_deployment = None  # set by with_service_graph

    # -- fluent configuration ----------------------------------------------

    def with_agent(
        self, node: KernelNode, enable_packet_ids: bool = True
    ) -> "TracerSession":
        """Install an agent daemon on ``node`` (idempotent)."""
        self.tracer.add_agent(node, enable_packet_ids=enable_packet_ids)
        return self

    def with_clock_sync(
        self,
        master_node: KernelNode,
        master_ip: IPv4Address,
        master_nic_hook: str,
        target_node: KernelNode,
        target_ip: IPv4Address,
        target_nic_hook: str,
        samples: int = 100,
    ) -> "TracerSession":
        """Start a Cristian clock-sync exchange toward ``target_node``;
        the skew estimate lands in the trace DB when it completes.  The
        synchronizer is kept in ``self.syncs[target_node.name]`` for
        callers that need its completion callback."""
        sync = self.tracer.synchronize_clocks(
            master_node, master_ip, master_nic_hook,
            target_node, target_ip, target_nic_hook,
            samples=samples,
        )
        self.syncs[target_node.name] = sync
        return self

    def with_fault_plan(self, plan: Optional[FaultPlan]) -> "TracerSession":
        """Attach a deterministic fault plan (docs/FAULTS.md); ``None``
        detaches."""
        self.tracer.set_fault_plan(plan)
        return self

    def with_stats_sampler(self, interval_ns: int = 50_000_000) -> "TracerSession":
        """Snapshot the self-observability registry periodically."""
        self.tracer.attach_stats_sampler(interval_ns=interval_ns)
        return self

    def with_streaming(
        self,
        chain: Sequence[str],
        window_ns: int = 100_000_000,
        slide_ns: Optional[int] = None,
        allowed_lateness_ns: int = 0,
        top_k: int = 8,
        emit_interval_ns: Optional[int] = None,
    ) -> "TracerSession":
        """Attach the live window-aggregation layer over ``chain``
        (docs/STREAMING.md); the aggregator is on ``self.streaming``
        and its closed frames on :meth:`window_frames`."""
        self.tracer.attach_streaming(
            chain,
            window_ns=window_ns,
            slide_ns=slide_ns,
            allowed_lateness_ns=allowed_lateness_ns,
            top_k=top_k,
            emit_interval_ns=emit_interval_ns,
        )
        return self

    def with_service_graph(
        self,
        graph,
        *,
        seed: int = 0,
        link_gbps: float = 1.0,
        propagation_ns: int = 20_000,
        enable_packet_ids: bool = True,
    ) -> "TracerSession":
        """Compile a :class:`~repro.services.graph.ServiceGraph` onto
        this session's engine (docs/SERVICES.md): every replica node
        gets an agent daemon, the ``vnt_rpc_*`` metrics register in
        this tracer's registry, and the deployment lands on
        ``self.service_deployment`` for load control and causality
        links."""
        deployment = graph.compile(
            self.engine,
            registry=self.tracer.obs,
            seed=seed,
            link_gbps=link_gbps,
            propagation_ns=propagation_ns,
        )
        for node in deployment.nodes:
            self.tracer.add_agent(node, enable_packet_ids=enable_packet_ids)
        self.service_deployment = deployment
        return self

    @property
    def streaming(self):
        """The attached streaming aggregator (``None`` until
        :meth:`with_streaming`)."""
        return self.tracer.streaming

    def window_frames(self):
        """Closed :class:`~repro.streaming.windows.WindowFrame` rows so
        far (flush the tail with ``session.streaming.close_all()``)."""
        if self.tracer.streaming is None:
            return []
        return list(self.tracer.streaming.frames)

    # -- driving the pipeline ----------------------------------------------

    def deploy(self, spec: TracingSpec) -> DeployReport:
        """Ship tracing scripts through the (possibly faulty) control
        plane; see :meth:`VNetTracer.deploy`."""
        return self.tracer.deploy(spec)

    def collect(self) -> CollectReport:
        """Offline collection; see :meth:`VNetTracer.collect`."""
        return self.tracer.collect()

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Drive the shared engine (convenience passthrough)."""
        return self.engine.run(until=until, max_events=max_events)

    def decompose(self, chain: Sequence[str]):
        return self.tracer.decompose(chain)

    def span_forest(self, chain: Optional[Sequence[str]] = None, **kwargs):
        return self.tracer.span_forest(chain, **kwargs)

    def build(self) -> VNetTracer:
        """The configured underlying tracer (for code that drives the
        engine-room API directly)."""
        return self.tracer

    def __repr__(self) -> str:
        plan = self.tracer.fault_plan
        return (
            f"<TracerSession agents={sorted(self.tracer.agents)} "
            f"faults={'on' if plan is not None and plan.active else 'off'}>"
        )
