"""The agent's kernel-side record buffer (§III-C).

The paper loads a kernel module per monitored machine that mmap()s a
kernel buffer into /proc so trace records cross into user space
*without* per-record copies or context switches -- the key difference
from SystemTap's per-event relay.  We model it as a bounded byte buffer
the perf-event consumer appends to; a periodic flush drains it to the
agent's local store at a small fixed cost (the page-remap, not a
per-record copy).

Size limits follow the paper's footnote: 32 bytes .. 128 KB - 16
(kmalloc bounds).  When the buffer fills between flushes, further
records are dropped and counted -- the visible symptom of an
undersized buffer in the ablation bench.
"""

from __future__ import annotations

from typing import Callable, List

from repro.core.config import GlobalConfig
from repro.sim.engine import Engine

FLUSH_FIXED_COST_NS = 900  # remap + bookkeeping, independent of volume


class RingBufferFull(Exception):
    """Raised only in strict mode; normally fullness just drops."""


class TraceRingBuffer:
    """Bounded in-kernel record buffer with periodic flush."""

    def __init__(
        self,
        engine: Engine,
        capacity_bytes: int,
        flush_interval_ns: int,
        on_flush: Callable[[List[bytes]], None],
        name: str = "ringbuf",
    ):
        if not GlobalConfig.MIN_RING_BYTES <= capacity_bytes <= GlobalConfig.MAX_RING_BYTES:
            raise ValueError(
                f"ring buffer size {capacity_bytes} outside kmalloc bounds "
                f"[{GlobalConfig.MIN_RING_BYTES}, {GlobalConfig.MAX_RING_BYTES}]"
            )
        self.engine = engine
        self.capacity_bytes = capacity_bytes
        self.flush_interval_ns = flush_interval_ns
        self.on_flush = on_flush
        self.name = name
        self._records: List[bytes] = []
        self._used_bytes = 0
        self.total_appended = 0
        self.total_dropped = 0
        self.flushes = 0
        self._timer = None
        self._running = False

    # -- producer side (called by the perf-event consumer) ----------------

    def append(self, record: bytes) -> bool:
        size = len(record)
        if self._used_bytes + size > self.capacity_bytes:
            self.total_dropped += 1
            return False
        self._records.append(record)
        self._used_bytes += size
        self.total_appended += 1
        return True

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    # -- flush side ----------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._timer = self.engine.schedule(self.flush_interval_ns, self._periodic)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _periodic(self) -> None:
        if not self._running:
            return
        self.flush()
        self._timer = self.engine.schedule(self.flush_interval_ns, self._periodic)

    def flush(self) -> int:
        """Drain to the consumer; returns the number of records moved."""
        if not self._records:
            return 0
        batch, self._records = self._records, []
        self._used_bytes = 0
        self.flushes += 1
        self.on_flush(batch)
        return len(batch)

    def __repr__(self) -> str:
        return (
            f"<TraceRingBuffer {self.name} used={self._used_bytes}/"
            f"{self.capacity_bytes}B dropped={self.total_dropped}>"
        )
