"""The agent's kernel-side record buffer (§III-C).

The paper loads a kernel module per monitored machine that mmap()s a
kernel buffer into /proc so trace records cross into user space
*without* per-record copies or context switches -- the key difference
from SystemTap's per-event relay.  We model it as a bounded byte buffer
the perf-event consumer appends to; a periodic flush drains it to the
agent's local store at a small fixed cost (the page-remap, not a
per-record copy).

Size limits follow the paper's footnote: 32 bytes .. 128 KB - 16
(kmalloc bounds).  When the buffer fills between flushes, the
configured *degradation policy* decides what is lost (docs/FAULTS.md):

* ``drop-newest`` (default, the classic behaviour) -- the arriving
  record is rejected;
* ``drop-oldest`` -- buffered records are evicted from the head until
  the arriving record fits (freshest data wins);
* ``sample`` -- with probability ``sample_prob`` the arriving record
  is admitted by evicting from the head (as drop-oldest), otherwise it
  is rejected (an unbiased thinning of the overflow window; decisions
  come from a :class:`~repro.sim.rng.SeededRNG`, so runs stay
  deterministic).

Every lost record is counted in ``total_dropped`` (and, when a
:class:`~repro.faults.metrics.FaultMetrics` is attached, under
``vnt_fault_records_lost_total{reason="ring_policy"}``) -- loss
accounting is exact under every policy.  With ``strict=True`` the
buffer raises :class:`RingBufferFull` whenever a record is lost (the
drop is still counted), for callers that must fail fast rather than
lose records silently.  A record larger than the effective capacity
can never fit: each attempt counts one drop (and raises in strict
mode) without wedging the buffer for subsequent records.

``reserve()`` / ``release()`` shrink and restore the effective
capacity -- the fault injector's "forced ring pressure" windows, which
model a competing kernel consumer squeezing the buffer.

When a :class:`~repro.obs.registry.MetricsRegistry` is supplied, the
buffer exports the ``ringbuffer`` stage of the metrics contract
(``docs/OBSERVABILITY.md``): appends, drops, flushes, flush batch
sizes, and the occupancy high-water mark.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, TYPE_CHECKING

from repro.core.config import (
    GlobalConfig,
    RING_POLICIES,
    RING_POLICY_DROP_NEWEST,
    RING_POLICY_DROP_OLDEST,
    RING_POLICY_SAMPLE,
)
from repro.obs import contract as obs_contract
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Engine
from repro.sim.rng import SeededRNG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.metrics import FaultMetrics

FLUSH_FIXED_COST_NS = 900  # remap + bookkeeping, independent of volume


class RingBufferFull(Exception):
    """Raised by ``append`` in strict mode; normally fullness just drops."""


class TraceRingBuffer:
    """Bounded in-kernel record buffer with periodic flush."""

    def __init__(
        self,
        engine: Engine,
        capacity_bytes: int,
        flush_interval_ns: int,
        on_flush: Callable[[List[bytes]], None],
        name: str = "ringbuf",
        strict: bool = False,
        registry: Optional[MetricsRegistry] = None,
        node: str = "",
        policy: str = RING_POLICY_DROP_NEWEST,
        sample_prob: float = 0.5,
        rng: Optional[SeededRNG] = None,
        fault_metrics: "Optional[FaultMetrics]" = None,
    ):
        if not GlobalConfig.MIN_RING_BYTES <= capacity_bytes <= GlobalConfig.MAX_RING_BYTES:
            raise ValueError(
                f"ring buffer size {capacity_bytes} outside kmalloc bounds "
                f"[{GlobalConfig.MIN_RING_BYTES}, {GlobalConfig.MAX_RING_BYTES}]"
            )
        if policy not in RING_POLICIES:
            raise ValueError(f"unknown ring policy {policy!r}")
        self.engine = engine
        self.capacity_bytes = capacity_bytes
        self.flush_interval_ns = flush_interval_ns
        self.on_flush = on_flush
        self.name = name
        self.strict = strict
        self.node = node or name
        self.policy = policy
        self.sample_prob = sample_prob
        # The sample policy needs randomness; a policy-less buffer never
        # draws, so existing deployments stay on their exact RNG streams.
        self._rng = rng
        self._fault_metrics = fault_metrics
        self._reserved_bytes = 0
        self._records: Deque[bytes] = deque()
        self._used_bytes = 0
        self.total_appended = 0
        self.total_dropped = 0
        self.flushes = 0
        self.occupancy_hwm_bytes = 0
        # Virtual time of the oldest buffered record's append; the age of
        # the batch at flush time is the flush latency records experience.
        self._first_append_ns: Optional[int] = None
        self.last_flush_age_ns = 0
        self._timer = None
        self._running = False

        self._m_batch = self._m_hwm = None
        if registry is not None:
            # The append/drop/flush counters are *pull-based* (evaluated at
            # collection time from the totals this buffer already keeps), so
            # the per-record hot path does no metric work.  Summing is
            # monotone-correct across redeploys: a replaced ring's callback
            # keeps reporting its frozen totals.  The occupancy gauge must
            # stay push-based -- maxima from successive rings do not sum.
            appended = registry.register_spec(obs_contract.RING_APPENDED)
            appended.add_callback(lambda: {(self.node,): float(self.total_appended)})
            dropped = registry.register_spec(obs_contract.RING_DROPPED)
            dropped.add_callback(lambda: {(self.node,): float(self.total_dropped)})
            flushes = registry.register_spec(obs_contract.RING_FLUSHES)
            flushes.add_callback(lambda: {(self.node,): float(self.flushes)})
            self._m_batch = registry.register_spec(obs_contract.RING_FLUSH_BATCH)
            self._m_hwm = registry.register_spec(obs_contract.RING_OCCUPANCY_HWM)

    # -- producer side (called by the perf-event consumer) ----------------

    def append(self, record: bytes) -> bool:
        size = len(record)
        capacity = self.effective_capacity_bytes
        if self._used_bytes + size > capacity:
            if self.policy == RING_POLICY_DROP_NEWEST:
                return self._reject(size)
            if self.policy == RING_POLICY_SAMPLE and not (
                self._rng is not None and self._rng.random() < self.sample_prob
            ):
                return self._reject(size)
            # drop-oldest (or a sample admit): evict from the head until
            # the arriving record fits.
            evicted = 0
            while self._records and self._used_bytes + size > capacity:
                oldest = self._records.popleft()
                self._used_bytes -= len(oldest)
                evicted += 1
            self._count_drops(evicted)
            if self._used_bytes + size > capacity:
                # The record alone exceeds the (possibly squeezed)
                # capacity; nothing to admit.
                return self._reject(size)
            if evicted and self.strict:
                self._admit(record, size)
                raise RingBufferFull(
                    f"{self.name}: evicted {evicted} record(s) to admit a "
                    f"{size}B record ({self._used_bytes}/{capacity}B used)"
                )
        self._admit(record, size)
        return True

    def _admit(self, record: bytes, size: int) -> None:
        if self._first_append_ns is None:
            self._first_append_ns = self.engine.now
        self._records.append(record)
        self._used_bytes += size
        self.total_appended += 1
        if self._used_bytes > self.occupancy_hwm_bytes:
            self.occupancy_hwm_bytes = self._used_bytes
            if self._m_hwm is not None:
                self._m_hwm.set_max(self._used_bytes, labels=(self.node,))

    def _reject(self, size: int) -> bool:
        self._count_drops(1)
        if self.strict:
            raise RingBufferFull(
                f"{self.name}: {size}B record does not fit "
                f"({self._used_bytes}/{self.effective_capacity_bytes}B used)"
            )
        return False

    def _count_drops(self, count: int) -> None:
        if count:
            self.total_dropped += count
            if self._fault_metrics is not None:
                self._fault_metrics.records_lost(self.node, "ring_policy", count)

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    # -- forced pressure (faults/inject.py) -----------------------------------

    @property
    def effective_capacity_bytes(self) -> int:
        """Capacity minus any fault-injected reservation."""
        return max(0, self.capacity_bytes - self._reserved_bytes)

    def reserve(self, nbytes: int) -> int:
        """Squeeze the buffer by ``nbytes`` (clamped to the capacity);
        returns the bytes actually reserved.  Buffered records are not
        evicted -- the squeeze constrains what still fits until the next
        flush or a matching :meth:`release`."""
        grant = max(0, min(int(nbytes), self.capacity_bytes - self._reserved_bytes))
        self._reserved_bytes += grant
        return grant

    def release(self, nbytes: int) -> None:
        """Undo (part of) a reservation; over-release clamps to zero."""
        self._reserved_bytes = max(0, self._reserved_bytes - int(nbytes))

    # -- flush side ----------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._timer = self.engine.schedule(self.flush_interval_ns, self._periodic)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _periodic(self) -> None:
        if not self._running:
            return
        self.flush()
        self._timer = self.engine.schedule(self.flush_interval_ns, self._periodic)

    def flush(self) -> int:
        """Drain to the consumer; returns the number of records moved."""
        if not self._records:
            return 0
        batch = list(self._records)
        self._records.clear()
        self._used_bytes = 0
        self.flushes += 1
        self.last_flush_age_ns = self.engine.now - (self._first_append_ns or 0)
        self._first_append_ns = None
        if self._m_batch is not None:
            self._m_batch.observe(len(batch), labels=(self.node,))
        self.on_flush(batch)
        return len(batch)

    def discard(self) -> int:
        """Throw away buffered records *without* flushing (an agent
        crash); returns how many were lost.  The caller accounts the
        loss -- a crash is not a ring-policy drop, so ``total_dropped``
        is left alone."""
        lost = len(self._records)
        self._records.clear()
        self._used_bytes = 0
        self._first_append_ns = None
        return lost

    def __repr__(self) -> str:
        return (
            f"<TraceRingBuffer {self.name} used={self._used_bytes}/"
            f"{self.capacity_bytes}B dropped={self.total_dropped}>"
        )
