"""The agent's kernel-side record buffer (§III-C).

The paper loads a kernel module per monitored machine that mmap()s a
kernel buffer into /proc so trace records cross into user space
*without* per-record copies or context switches -- the key difference
from SystemTap's per-event relay.  We model it as a bounded byte buffer
the perf-event consumer appends to; a periodic flush drains it to the
agent's local store at a small fixed cost (the page-remap, not a
per-record copy).

Size limits follow the paper's footnote: 32 bytes .. 128 KB - 16
(kmalloc bounds).  When the buffer fills between flushes, further
records are dropped and counted -- the visible symptom of an
undersized buffer in the ablation bench.  With ``strict=True`` the
buffer instead raises :class:`RingBufferFull` on overflow (the drop is
still counted), for callers that must fail fast rather than lose
records silently.  A record larger than ``capacity_bytes`` can never
fit: each attempt counts one drop (and raises in strict mode) without
wedging the buffer for subsequent records.

When a :class:`~repro.obs.registry.MetricsRegistry` is supplied, the
buffer exports the ``ringbuffer`` stage of the metrics contract
(``docs/OBSERVABILITY.md``): appends, drops, flushes, flush batch
sizes, and the occupancy high-water mark.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.config import GlobalConfig
from repro.obs import contract as obs_contract
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Engine

FLUSH_FIXED_COST_NS = 900  # remap + bookkeeping, independent of volume


class RingBufferFull(Exception):
    """Raised by ``append`` in strict mode; normally fullness just drops."""


class TraceRingBuffer:
    """Bounded in-kernel record buffer with periodic flush."""

    def __init__(
        self,
        engine: Engine,
        capacity_bytes: int,
        flush_interval_ns: int,
        on_flush: Callable[[List[bytes]], None],
        name: str = "ringbuf",
        strict: bool = False,
        registry: Optional[MetricsRegistry] = None,
        node: str = "",
    ):
        if not GlobalConfig.MIN_RING_BYTES <= capacity_bytes <= GlobalConfig.MAX_RING_BYTES:
            raise ValueError(
                f"ring buffer size {capacity_bytes} outside kmalloc bounds "
                f"[{GlobalConfig.MIN_RING_BYTES}, {GlobalConfig.MAX_RING_BYTES}]"
            )
        self.engine = engine
        self.capacity_bytes = capacity_bytes
        self.flush_interval_ns = flush_interval_ns
        self.on_flush = on_flush
        self.name = name
        self.strict = strict
        self.node = node or name
        self._records: List[bytes] = []
        self._used_bytes = 0
        self.total_appended = 0
        self.total_dropped = 0
        self.flushes = 0
        self.occupancy_hwm_bytes = 0
        # Virtual time of the oldest buffered record's append; the age of
        # the batch at flush time is the flush latency records experience.
        self._first_append_ns: Optional[int] = None
        self.last_flush_age_ns = 0
        self._timer = None
        self._running = False

        self._m_batch = self._m_hwm = None
        if registry is not None:
            # The append/drop/flush counters are *pull-based* (evaluated at
            # collection time from the totals this buffer already keeps), so
            # the per-record hot path does no metric work.  Summing is
            # monotone-correct across redeploys: a replaced ring's callback
            # keeps reporting its frozen totals.  The occupancy gauge must
            # stay push-based -- maxima from successive rings do not sum.
            appended = registry.register_spec(obs_contract.RING_APPENDED)
            appended.add_callback(lambda: {(self.node,): float(self.total_appended)})
            dropped = registry.register_spec(obs_contract.RING_DROPPED)
            dropped.add_callback(lambda: {(self.node,): float(self.total_dropped)})
            flushes = registry.register_spec(obs_contract.RING_FLUSHES)
            flushes.add_callback(lambda: {(self.node,): float(self.flushes)})
            self._m_batch = registry.register_spec(obs_contract.RING_FLUSH_BATCH)
            self._m_hwm = registry.register_spec(obs_contract.RING_OCCUPANCY_HWM)

    # -- producer side (called by the perf-event consumer) ----------------

    def append(self, record: bytes) -> bool:
        size = len(record)
        if self._used_bytes + size > self.capacity_bytes:
            self.total_dropped += 1
            if self.strict:
                raise RingBufferFull(
                    f"{self.name}: {size}B record does not fit "
                    f"({self._used_bytes}/{self.capacity_bytes}B used)"
                )
            return False
        if self._first_append_ns is None:
            self._first_append_ns = self.engine.now
        self._records.append(record)
        self._used_bytes += size
        self.total_appended += 1
        if self._used_bytes > self.occupancy_hwm_bytes:
            self.occupancy_hwm_bytes = self._used_bytes
            if self._m_hwm is not None:
                self._m_hwm.set_max(self._used_bytes, labels=(self.node,))
        return True

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    # -- flush side ----------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._timer = self.engine.schedule(self.flush_interval_ns, self._periodic)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _periodic(self) -> None:
        if not self._running:
            return
        self.flush()
        self._timer = self.engine.schedule(self.flush_interval_ns, self._periodic)

    def flush(self) -> int:
        """Drain to the consumer; returns the number of records moved."""
        if not self._records:
            return 0
        batch, self._records = self._records, []
        self._used_bytes = 0
        self.flushes += 1
        self.last_flush_age_ns = self.engine.now - (self._first_append_ns or 0)
        self._first_append_ns = None
        if self._m_batch is not None:
            self._m_batch.observe(len(batch), labels=(self.node,))
        self.on_flush(batch)
        return len(batch)

    def __repr__(self) -> str:
        return (
            f"<TraceRingBuffer {self.name} used={self._used_bytes}/"
            f"{self.capacity_bytes}B dropped={self.total_dropped}>"
        )
