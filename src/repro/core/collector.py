"""The raw data collector (master node, §III-A/C).

Receives record batches from agents, resolves tracepoint IDs to labels,
applies per-node clock-skew alignment, and stores rows in the
:class:`~repro.core.tracedb.TraceDB`.  Because agents report
periodically, the collector doubles as a heartbeat monitor "to
guarantee that the agents work properly".
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.records import TraceRecord
from repro.core.tracedb import TraceDB
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.agent import Agent


class RawDataCollector:
    """Batch ingest + heartbeat monitoring."""

    def __init__(self, engine: Engine, db: Optional[TraceDB] = None):
        self.engine = engine
        self.db = db or TraceDB()
        self.agents: Dict[str, "Agent"] = {}
        self._labels: Dict[int, str] = {}  # tracepoint_id -> label
        self._last_heartbeat_ns: Dict[str, int] = {}
        self.batches_received = 0
        self.records_received = 0
        self.unknown_tracepoint_records = 0

    # -- registration ---------------------------------------------------------

    def register_agent(self, agent: "Agent") -> None:
        self.agents[agent.node.name] = agent
        self._last_heartbeat_ns[agent.node.name] = self.engine.now

    def register_labels(self, labels: Dict[int, str]) -> None:
        """Tracepoint-id -> label mapping from the deployed spec."""
        self._labels.update(labels)

    # -- ingest -----------------------------------------------------------------

    def receive_batch(self, node: str, records: List[TraceRecord]) -> None:
        self.batches_received += 1
        for record in records:
            label = self._labels.get(record.tracepoint_id)
            if label is None:
                self.unknown_tracepoint_records += 1
                label = f"tracepoint-{record.tracepoint_id}"
            self.db.insert(node, label, record)
            self.records_received += 1
        self._last_heartbeat_ns[node] = self.engine.now

    def collect_all_offline(self) -> int:
        """Pull every agent's local store (offline collection mode)."""
        total = 0
        for agent in self.agents.values():
            total += agent.collect_local()
        return total

    # -- heartbeat monitoring --------------------------------------------------------

    def heartbeat(self, node: str) -> None:
        self._last_heartbeat_ns[node] = self.engine.now

    def stale_agents(self, max_age_ns: int) -> List[str]:
        """Agents that have not reported within ``max_age_ns``."""
        now = self.engine.now
        return [
            node
            for node, last in self._last_heartbeat_ns.items()
            if now - last > max_age_ns
        ]

    def __repr__(self) -> str:
        return (
            f"<RawDataCollector records={self.records_received} "
            f"agents={sorted(self.agents)}>"
        )
