"""The raw data collector (master node, §III-A/C).

Receives record batches from agents, resolves tracepoint IDs to labels,
and stores rows in the :class:`~repro.core.tracedb.TraceDB`.  Per-node
clock-skew alignment is *delegated to the database*: the collector
hands raw records to :meth:`TraceDB.insert`, which aligns each
timestamp using the per-node offsets registered via
:meth:`TraceDB.set_clock_skew` (fed by
:mod:`repro.core.clocksync`) and stores both the raw and aligned
values.  Records ingested *before* a node's skew estimate lands keep a
zero offset -- deploy tracing after synchronization (as the quickstart
does) for aligned cross-node latencies.  Because agents report
periodically, the collector doubles as a heartbeat monitor "to
guarantee that the agents work properly".

All liveness bookkeeping runs on the *simulation clock* (``engine.now``,
master time): registration, heartbeats, and online batch arrivals each
stamp the current virtual time.  Offline collection (the master pulling
an agent's local store at the end of a run) is *not* a liveness signal
-- the agent did not report, the master reached out -- so it never
refreshes the heartbeat stamp; an agent that went silent mid-run stays
stale through final collection.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.records import TraceRecord
from repro.core.tracedb import TraceDB
from repro.obs import contract as obs_contract
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.agent import Agent
    from repro.tracing.reconstruct import SpanAssembler


class RawDataCollector:
    """Batch ingest + heartbeat monitoring."""

    def __init__(
        self,
        engine: Engine,
        db: Optional[TraceDB] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.engine = engine
        self.db = db or TraceDB()
        self.registry = registry
        self.agents: Dict[str, "Agent"] = {}
        self._labels: Dict[int, str] = {}  # tracepoint_id -> label
        self._last_heartbeat_ns: Dict[str, int] = {}
        self.batches_received = 0
        self.records_received = 0
        self.unknown_tracepoint_records = 0
        # (arrival_ns, node, records) per ingested batch, for the
        # control-plane track of the span timeline.
        self.batch_log: List[Tuple[int, str, int]] = []

        self._m_batches = self._m_records = self._m_unknown = None
        if registry is not None:
            self._m_batches = registry.register_spec(obs_contract.COLLECTOR_BATCHES)
            self._m_records = registry.register_spec(obs_contract.COLLECTOR_RECORDS)
            self._m_unknown = registry.register_spec(obs_contract.COLLECTOR_UNKNOWN)
            staleness = registry.register_spec(
                obs_contract.COLLECTOR_HEARTBEAT_STALENESS)
            staleness.add_callback(self._staleness_samples)
            # The ingest-rate gauge is set by the StatsSampler (it owns
            # the sampling window); registering it here keeps the whole
            # collector stage present even before a sampler attaches.
            registry.register_spec(obs_contract.COLLECTOR_INGEST_RATE)

    # -- registration ---------------------------------------------------------

    def register_agent(self, agent: "Agent") -> None:
        self.agents[agent.node.name] = agent
        self._last_heartbeat_ns[agent.node.name] = self.engine.now

    def register_labels(self, labels: Dict[int, str]) -> None:
        """Tracepoint-id -> label mapping from the deployed spec."""
        self._labels.update(labels)

    # -- ingest -----------------------------------------------------------------

    def receive_batch(
        self, node: str, records: List[TraceRecord], liveness: bool = True
    ) -> None:
        """Ingest one batch; timestamps are aligned by ``TraceDB.insert``
        using the node's registered skew offset (see the module docstring).

        ``liveness`` controls whether the batch refreshes the node's
        heartbeat stamp: online shipments do (the agent reported on its
        own), offline pulls must pass ``False`` (the master collected; a
        dead agent's buffered records arriving must not mark it alive)."""
        self.batches_received += 1
        if self._m_batches is not None:
            self._m_batches.inc()
        for record in records:
            label = self._labels.get(record.tracepoint_id)
            if label is None:
                self.unknown_tracepoint_records += 1
                if self._m_unknown is not None:
                    self._m_unknown.inc()
                label = f"tracepoint-{record.tracepoint_id}"
            self.db.insert(node, label, record)
            self.records_received += 1
        if self._m_records is not None:
            self._m_records.inc(len(records))
        self.batch_log.append((self.engine.now, node, len(records)))
        if liveness:
            self._last_heartbeat_ns[node] = self.engine.now

    def collect_all_offline(self) -> int:
        """Pull every agent's local store (offline collection mode)."""
        total = 0
        for agent in self.agents.values():
            total += agent.collect_local()
        return total

    # -- heartbeat monitoring --------------------------------------------------------

    def heartbeat(self, node: str) -> None:
        self._last_heartbeat_ns[node] = self.engine.now

    def stale_agents(self, max_age_ns: int) -> List[str]:
        """Agents that have not reported within ``max_age_ns``.

        The boundary is exclusive: an agent whose last report is exactly
        ``max_age_ns`` old is still considered healthy."""
        now = self.engine.now
        return [
            node
            for node, last in self._last_heartbeat_ns.items()
            if now - last > max_age_ns
        ]

    # -- span feed -------------------------------------------------------------

    def span_feed(self) -> "SpanAssembler":
        """A span assembler over this collector's database, exporting
        into the same metrics registry (``docs/TIMELINES.md``)."""
        from repro.tracing.reconstruct import SpanAssembler

        return SpanAssembler(self.db, registry=self.registry)

    def _staleness_samples(self) -> Dict[Tuple[str], float]:
        """Pull source for ``vnt_collector_heartbeat_staleness_ns``."""
        now = self.engine.now
        return {
            (node,): float(now - last)
            for node, last in self._last_heartbeat_ns.items()
        }

    def __repr__(self) -> str:
        return (
            f"<RawDataCollector records={self.records_received} "
            f"agents={sorted(self.agents)}>"
        )
