"""The raw data collector (master node, §III-A/C).

Receives record batches from agents, resolves tracepoint IDs to labels,
and stores rows in the :class:`~repro.core.tracedb.TraceDB`.  Per-node
clock-skew alignment is *delegated to the database*: the collector
hands raw records to :meth:`TraceDB.insert`, which aligns each
timestamp using the per-node offsets registered via
:meth:`TraceDB.set_clock_skew` (fed by
:mod:`repro.core.clocksync`) and stores both the raw and aligned
values.  Records ingested *before* a node's skew estimate lands keep a
zero offset -- deploy tracing after synchronization (as the quickstart
does) for aligned cross-node latencies.  Because agents report
periodically, the collector doubles as a heartbeat monitor "to
guarantee that the agents work properly".

Shipment is *at-least-once* (docs/FAULTS.md): agents stamp each batch
with a per-node sequence number and retransmit until acked, so the
collector may see duplicates and out-of-order arrivals.  Duplicates
are discarded via :meth:`TraceDB.mark_batch`; fresh batches are held
in a per-node resequencer and applied strictly in sequence order, so
the database ends up with exactly the rows -- in exactly the
per-node order -- a fault-free run would produce.  When an agent
abandons a batch (retry budget exhausted, or it crashed with the
batch unsent) it posts a :meth:`skip_shipment` gap notice so the
resequencer never wedges behind a hole.

All liveness bookkeeping runs on the *simulation clock* (``engine.now``,
master time): registration, heartbeats, and online batch arrivals each
stamp the current virtual time.  Offline collection (the master pulling
an agent's local store at the end of a run) is *not* a liveness signal
-- the agent did not report, the master reached out -- so it never
refreshes the heartbeat stamp; an agent that went silent mid-run stays
stale through final collection.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING, Union

from repro.core.records import TraceRecord
from repro.core.reports import CollectReport, merge_node_counts
from repro.core.tracedb import TraceDB
from repro.faults.metrics import FaultMetrics
from repro.obs import contract as obs_contract
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.agent import Agent
    from repro.tracing.reconstruct import SpanAssembler

# One shipment: a packed blob of 24-byte records (the hot path) or a
# decoded record list (direct calls, tests).
Batch = Union[bytes, List[TraceRecord]]


class RawDataCollector:
    """Batch ingest + heartbeat monitoring."""

    def __init__(
        self,
        engine: Engine,
        db: Optional[TraceDB] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.engine = engine
        self.db = db if db is not None else TraceDB(registry=registry)
        self.registry = registry
        self.agents: Dict[str, "Agent"] = {}
        self._labels: Dict[int, str] = {}  # tracepoint_id -> label
        self._last_heartbeat_ns: Dict[str, int] = {}
        self.batches_received = 0
        self.records_received = 0
        self.unknown_tracepoint_records = 0
        # (arrival_ns, node, records) per ingested batch, for the
        # control-plane track of the span timeline.
        self.batch_log: List[Tuple[int, str, int]] = []
        # At-least-once resequencing state, per node: the next sequence
        # number to apply, batches held for an earlier gap, and seqs the
        # agent told us will never arrive (docs/FAULTS.md).
        self._next_seq: Dict[str, int] = {}
        self._held: Dict[str, Dict[int, Batch]] = {}
        self._skipped: Dict[str, set] = {}
        self.fault_metrics = FaultMetrics(registry)
        # Optional streaming tap (docs/STREAMING.md), fed from _apply so
        # it sits downstream of the dedup/resequencing pipeline.
        self._streaming = None

        self._m_batches = self._m_records = self._m_unknown = None
        if registry is not None:
            self._m_batches = registry.register_spec(obs_contract.COLLECTOR_BATCHES)
            self._m_records = registry.register_spec(obs_contract.COLLECTOR_RECORDS)
            self._m_unknown = registry.register_spec(obs_contract.COLLECTOR_UNKNOWN)
            staleness = registry.register_spec(
                obs_contract.COLLECTOR_HEARTBEAT_STALENESS)
            staleness.add_callback(self._staleness_samples)
            # The ingest-rate gauge is set by the StatsSampler (it owns
            # the sampling window); registering it here keeps the whole
            # collector stage present even before a sampler attaches.
            registry.register_spec(obs_contract.COLLECTOR_INGEST_RATE)

    # -- registration ---------------------------------------------------------

    def register_agent(self, agent: "Agent") -> None:
        self.agents[agent.node.name] = agent
        self._last_heartbeat_ns[agent.node.name] = self.engine.now

    def register_labels(self, labels: Dict[int, str]) -> None:
        """Tracepoint-id -> label mapping from the deployed spec."""
        self._labels.update(labels)

    def set_streaming_tap(self, tap) -> None:
        """Subscribe a streaming aggregator to applied batches and gap
        notices.  The tap observes each batch right after the database
        insert, so it sees exactly the deduplicated, in-sequence record
        stream the TraceDB stores (docs/STREAMING.md)."""
        if self._streaming is not None and self._streaming is not tap:
            raise ValueError("collector already has a streaming tap")
        self._streaming = tap

    # -- ingest -----------------------------------------------------------------

    def receive_batch(
        self,
        node: str,
        records: "Batch",
        liveness: bool = True,
        seq: Optional[int] = None,
    ) -> bool:
        """Ingest one batch -- either a packed shipment blob (``bytes``,
        the agents' hot path, bulk-decoded by ``TraceDB.insert_packed``)
        or a list of :class:`TraceRecord` (the legacy direct path);
        timestamps are aligned by the database using the node's
        registered skew offset (see the module docstring).

        ``liveness`` controls whether the batch refreshes the node's
        heartbeat stamp: online shipments do (the agent reported on its
        own), offline pulls must pass ``False`` (the master collected; a
        dead agent's buffered records arriving must not mark it alive).

        ``seq`` is the agent's per-node shipment sequence number; when
        given, the batch is deduplicated against the database and held
        until every earlier sequence has been applied or skipped (the
        at-least-once path).  Without it the batch applies immediately
        (the legacy direct path).  Returns ``False`` only for a
        discarded duplicate."""
        if liveness:
            self._last_heartbeat_ns[node] = self.engine.now
        if seq is None:
            self._apply(node, records)
            return True
        if not self.db.mark_batch(node, seq):
            self.fault_metrics.shipment_deduped(node)
            return False
        self._held.setdefault(node, {})[seq] = records
        self._drain(node)
        return True

    def skip_shipment(self, node: str, seq: int) -> None:
        """Gap notice: batch ``seq`` from ``node`` will never arrive
        (retry budget exhausted or the agent crashed).  Later batches
        held behind the gap are released."""
        if not self.db.mark_batch(node, seq):
            return  # it actually arrived earlier; nothing to skip
        self._skipped.setdefault(node, set()).add(seq)
        if self._streaming is not None:
            self._streaming.observe_gap(node, seq)
        self._drain(node)

    def _drain(self, node: str) -> None:
        """Apply held batches in strict sequence order."""
        held = self._held.get(node, {})
        skipped = self._skipped.get(node, set())
        nxt = self._next_seq.get(node, 1)
        while True:
            if nxt in held:
                self._apply(node, held.pop(nxt))
            elif nxt in skipped:
                skipped.discard(nxt)
            else:
                break
            nxt += 1
        self._next_seq[node] = nxt

    def _apply(self, node: str, records: "Batch") -> None:
        self.batches_received += 1
        if self._m_batches is not None:
            self._m_batches.inc()
        if isinstance(records, (bytes, bytearray, memoryview)):
            count, unknown = self.db.insert_packed(node, records, self._labels)
        else:
            count = len(records)
            unknown = 0
            for record in records:
                label = self._labels.get(record.tracepoint_id)
                if label is None:
                    unknown += 1
                    label = f"tracepoint-{record.tracepoint_id}"
                self.db.insert(node, label, record)
        self.records_received += count
        self.unknown_tracepoint_records += unknown
        if unknown and self._m_unknown is not None:
            self._m_unknown.inc(unknown)
        if self._m_records is not None:
            self._m_records.inc(count)
        self.batch_log.append((self.engine.now, node, count))
        if self._streaming is not None:
            self._streaming.observe_ingest(node)

    def pending_batches(self, node: str) -> int:
        """Batches held by the resequencer waiting for an earlier seq."""
        return len(self._held.get(node, {}))

    def collect_all_offline(self) -> CollectReport:
        """Pull every agent's local store (offline collection mode).

        Returns a :class:`CollectReport` that still compares like the
        old ``int`` record count.  Crashed agents cannot serve the pull
        and are listed in ``skipped_nodes``."""
        report = CollectReport()
        deduped_before = self.db.deduped_batches
        for name, agent in self.agents.items():
            if getattr(agent, "crashed", False):
                report.skipped_nodes.append(name)
                continue
            pulled = agent.collect_local()
            if pulled:
                report.records += pulled
                report.batches += 1
                merge_node_counts(report.records_by_node, name, pulled)
        report.deduped_batches = self.db.deduped_batches - deduped_before
        return report

    # -- heartbeat monitoring --------------------------------------------------------

    def heartbeat(self, node: str) -> None:
        self._last_heartbeat_ns[node] = self.engine.now

    def stale_agents(self, max_age_ns: int) -> List[str]:
        """Agents that have not reported within ``max_age_ns``.

        The boundary is exclusive: an agent whose last report is exactly
        ``max_age_ns`` old is still considered healthy."""
        now = self.engine.now
        return [
            node
            for node, last in self._last_heartbeat_ns.items()
            if now - last > max_age_ns
        ]

    # -- span feed -------------------------------------------------------------

    def span_feed(self) -> "SpanAssembler":
        """A span assembler over this collector's database, exporting
        into the same metrics registry (``docs/TIMELINES.md``)."""
        from repro.tracing.reconstruct import SpanAssembler

        return SpanAssembler(self.db, registry=self.registry)

    def _staleness_samples(self) -> Dict[Tuple[str], float]:
        """Pull source for ``vnt_collector_heartbeat_staleness_ns``."""
        now = self.engine.now
        return {
            (node,): float(now - last)
            for node, last in self._last_heartbeat_ns.items()
        }

    def __repr__(self) -> str:
        return (
            f"<RawDataCollector records={self.records_received} "
            f"agents={sorted(self.agents)}>"
        )
