"""The vNetTracer façade: dispatcher + agents + collector wired together.

Typical use (mirrors the §III-A walkthrough):

    tracer = VNetTracer(engine)
    tracer.add_agent(host1.node)
    tracer.add_agent(vm1.node)
    tracer.synchronize_clocks(master_node, master_ip, "dev:eth0",
                              vm1.node, vm1_ip, "dev:ens3")
    spec = TracingSpec(rule=FilterRule.for_flow(...),
                       tracepoints=[TracepointSpec(node=..., hook=...), ...])
    tracer.deploy(spec)
    ... run the experiment ...
    tracer.collect()                       # offline collection
    segments = tracer.decompose([...])     # metrics over the TraceDB
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.agent import Agent
from repro.core.clocksync import ClockSynchronizer, SkewEstimate
from repro.core.collector import RawDataCollector
from repro.core.config import TracingSpec
from repro.core.dispatcher import ControlDataDispatcher
from repro.core.metrics import (
    SegmentLatency,
    ThroughputResult,
    decompose_latency,
    event_rate,
    latency_between,
    packet_loss,
    per_cpu_distribution,
    throughput_at,
)
from repro.core.tracedb import TraceDB
from repro.net.addressing import IPv4Address
from repro.net.stack import KernelNode
from repro.net.traceid import enable_trace_ids
from repro.sim.engine import Engine


class VNetTracer:
    """End-to-end tracing framework entry point."""

    def __init__(self, engine: Engine, master_name: str = "master"):
        self.engine = engine
        self.db = TraceDB()
        self.collector = RawDataCollector(engine, self.db)
        self.dispatcher = ControlDataDispatcher(engine, master_name)
        self.agents: Dict[str, Agent] = {}
        self.active_spec: Optional[TracingSpec] = None
        self.clock_estimates: Dict[str, SkewEstimate] = {}

    # -- setup ------------------------------------------------------------

    def add_agent(self, node: KernelNode, enable_packet_ids: bool = True) -> Agent:
        """Install an agent daemon (and the trace-ID kernel patch) on a node."""
        if node.name in self.agents:
            return self.agents[node.name]
        if enable_packet_ids:
            enable_trace_ids(node)
        agent = Agent(node, self.collector)
        self.agents[node.name] = agent
        self.dispatcher.register_agent(agent)
        return agent

    def synchronize_clocks(
        self,
        master_node: KernelNode,
        master_ip: IPv4Address,
        master_nic_hook: str,
        target_node: KernelNode,
        target_ip: IPv4Address,
        target_nic_hook: str,
        samples: int = 100,
    ) -> ClockSynchronizer:
        """Start a Cristian exchange; the estimate lands in the TraceDB
        (as the per-node alignment offset) when it completes."""
        sync = ClockSynchronizer(
            master_node,
            master_ip,
            master_nic_hook,
            target_node,
            target_ip,
            target_nic_hook,
            samples=samples,
        )

        def record(estimate: SkewEstimate) -> None:
            self.clock_estimates[target_node.name] = estimate
            self.db.set_clock_skew(target_node.name, estimate.skew_ns)

        sync.on_done = record
        sync.start()
        return sync

    # -- deployment -------------------------------------------------------------

    def deploy(self, spec: TracingSpec) -> None:
        """Ship tracing scripts; they attach after the control latency."""
        self.active_spec = spec
        self.collector.register_labels(
            {tp.tracepoint_id: tp.label for tp in spec.tracepoints}
        )
        self.dispatcher.deploy(spec)

    def undeploy(self) -> None:
        self.dispatcher.undeploy_all()

    # -- collection ------------------------------------------------------------------

    def collect(self) -> int:
        """Offline collection: drain every agent's local store."""
        return self.collector.collect_all_offline()

    # -- metrics convenience --------------------------------------------------------------

    def latencies(self, from_label: str, to_label: str) -> List[int]:
        return latency_between(self.db, from_label, to_label)

    def decompose(self, chain: Sequence[str]) -> List[SegmentLatency]:
        return decompose_latency(self.db, chain)

    def throughput(self, label: str, **kwargs) -> ThroughputResult:
        return throughput_at(self.db, label, **kwargs)

    def loss(self, from_label: str, to_label: str):
        return packet_loss(self.db, from_label, to_label)

    def cpu_distribution(self, label: str) -> Dict[int, float]:
        return per_cpu_distribution(self.db, label)

    def rate(self, label: str) -> float:
        return event_rate(self.db, label)

    def counter(self, node_name: str, label: str) -> int:
        """An in-kernel per-CPU counter's aggregated value."""
        agent = self.agents.get(node_name)
        return agent.counter(label) if agent else 0

    def size_histogram(self, node_name: str, label: str) -> List[int]:
        """The in-kernel log2 packet-size histogram at a tracepoint."""
        agent = self.agents.get(node_name)
        return agent.histogram(label) if agent else []

    def total_probe_overhead_ns(self) -> int:
        """Total simulated time spent inside all deployed eBPF programs."""
        total = 0
        for agent in self.agents.values():
            for script in agent.scripts.values():
                total += script.attachment.program.total_cost_ns
        return total

    def __repr__(self) -> str:
        return f"<VNetTracer agents={sorted(self.agents)} rows={self.db.rows_inserted}>"
