"""The vNetTracer façade: dispatcher + agents + collector wired together.

Typical use (mirrors the §III-A walkthrough):

    tracer = VNetTracer(engine)
    tracer.add_agent(host1.node)
    tracer.add_agent(vm1.node)
    tracer.synchronize_clocks(master_node, master_ip, "dev:eth0",
                              vm1.node, vm1_ip, "dev:ens3")
    spec = TracingSpec(rule=FilterRule.for_flow(...),
                       tracepoints=[TracepointSpec(node=..., hook=...), ...])
    tracer.deploy(spec)
    ... run the experiment ...
    tracer.collect()                       # offline collection
    segments = tracer.decompose([...])     # metrics over the TraceDB
    forest = tracer.span_forest([...])     # per-packet span trees
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.agent import Agent
from repro.core.clocksync import ClockSynchronizer, SkewEstimate
from repro.core.collector import RawDataCollector
from repro.core.config import TracingSpec
from repro.core.dispatcher import ControlDataDispatcher
from repro.core.metrics import (
    SegmentLatency,
    ThroughputResult,
    decompose_latency,
    event_rate,
    latency_between,
    packet_loss,
    per_cpu_distribution,
    throughput_at,
)
from repro.core.reports import CollectReport, DeployReport
from repro.core.tracedb import TraceDB
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan
from repro.net.addressing import IPv4Address
from repro.net.stack import KernelNode
from repro.net.traceid import TraceIDEngine
from repro.obs import contract as obs_contract
from repro.obs.instrument import register_ebpf_metrics
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import StatsSampler
from repro.sim.engine import Engine


class VNetTracer:
    """End-to-end tracing framework entry point.

    Every tracer owns a self-observability registry (``self.obs``,
    see :mod:`repro.obs`): the collector, agents, ring buffers, clock
    synchronizers, and the eBPF VM all export into it per the contract
    in ``docs/OBSERVABILITY.md``.  Call :meth:`attach_stats_sampler`
    to snapshot it periodically and :meth:`pipeline_health` for a
    rendered report.

    .. note:: For new code, prefer building the pipeline through
       :class:`~repro.core.session.TracerSession` -- the fluent
       front-end over this class (``with_agent(...)``,
       ``with_clock_sync(...)``, ``with_fault_plan(...)``,
       ``deploy(spec)``).  This class remains fully supported as the
       underlying engine-room API; the session builder simply removes
       the need to touch five constructors for the §III-A walkthrough.
    """

    def __init__(
        self,
        engine: Engine,
        master_name: str = "master",
        registry: Optional[MetricsRegistry] = None,
    ):
        self.engine = engine
        self.obs = registry if registry is not None else MetricsRegistry()
        self.db = TraceDB(registry=self.obs)
        self.collector = RawDataCollector(engine, self.db, registry=self.obs)
        self.dispatcher = ControlDataDispatcher(engine, master_name, registry=self.obs)
        self.agents: Dict[str, Agent] = {}
        self.fault_plan: Optional[FaultPlan] = None
        self.fault_injector: Optional[FaultInjector] = None
        self.active_spec: Optional[TracingSpec] = None
        self.clock_estimates: Dict[str, SkewEstimate] = {}
        self.sampler: Optional[StatsSampler] = None
        self.streaming = None  # StreamingAggregator via attach_streaming
        self._sync_programs: List = []
        self._span_assembler = None
        register_ebpf_metrics(self.obs, self._iter_programs)

    # -- setup ------------------------------------------------------------

    def add_agent(self, node: KernelNode, enable_packet_ids: bool = True) -> Agent:
        """Install an agent daemon (and the trace-ID kernel patch) on a node."""
        if node.name in self.agents:
            return self.agents[node.name]
        if enable_packet_ids:
            TraceIDEngine.attach(node)
        agent = Agent(node, self.collector, registry=self.obs)
        if self.fault_injector is not None:
            agent.set_fault_injector(self.fault_injector)
        self.agents[node.name] = agent
        self.dispatcher.register_agent(agent)
        return agent

    def set_fault_plan(self, plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
        """Attach a :class:`~repro.faults.plan.FaultPlan`: control and
        shipment channels start drawing fault decisions from the plan's
        seeded RNG streams, and scheduled crashes / ring-pressure
        windows are armed on the engine (docs/FAULTS.md).  Pass ``None``
        to detach.  Returns the armed injector."""
        self.fault_plan = plan
        if plan is None:
            self.fault_injector = None
            self.dispatcher.set_fault_injector(None)
            for agent in self.agents.values():
                agent.set_fault_injector(None)
            return None
        injector = FaultInjector(self.engine, plan, registry=self.obs)
        self.fault_injector = injector
        self.dispatcher.set_fault_injector(injector)
        for agent in self.agents.values():
            agent.set_fault_injector(injector)
        injector.arm(self.agents.get)
        return injector

    def synchronize_clocks(
        self,
        master_node: KernelNode,
        master_ip: IPv4Address,
        master_nic_hook: str,
        target_node: KernelNode,
        target_ip: IPv4Address,
        target_nic_hook: str,
        samples: int = 100,
    ) -> ClockSynchronizer:
        """Start a Cristian exchange; the estimate lands in the TraceDB
        (as the per-node alignment offset) when it completes."""
        sync = ClockSynchronizer(
            master_node,
            master_ip,
            master_nic_hook,
            target_node,
            target_ip,
            target_nic_hook,
            samples=samples,
            registry=self.obs,
        )
        self._sync_programs.extend(sync.programs())

        def record(estimate: SkewEstimate) -> None:
            self.clock_estimates[target_node.name] = estimate
            self.db.set_clock_skew(target_node.name, estimate.skew_ns)

        sync.on_done = record
        sync.start()
        return sync

    # -- deployment -------------------------------------------------------------

    def deploy(self, spec: TracingSpec) -> DeployReport:
        """Ship tracing scripts; they attach after the control latency.

        Returns a :class:`~repro.core.reports.DeployReport` with the
        delivery accounting (attempts, retries, acked agents).  The
        report iterates and compares like the package list older
        callers expected, so code that ignored or list-compared the
        return value keeps working (see the README migration note)."""
        self.active_spec = spec
        self.collector.register_labels(
            {tp.tracepoint_id: tp.label for tp in spec.tracepoints}
        )
        return self.dispatcher.deploy(spec)

    def undeploy(self) -> None:
        self.dispatcher.undeploy_all()

    # -- collection ------------------------------------------------------------------

    def collect(self) -> CollectReport:
        """Offline collection: drain every agent's local store.

        Returns a :class:`~repro.core.reports.CollectReport` that still
        compares, adds, and formats like the old ``int`` record count
        (see the README migration note)."""
        return self.collector.collect_all_offline()

    # -- span timelines ---------------------------------------------------------

    def span_assembler(self):
        """A :class:`~repro.tracing.reconstruct.SpanAssembler` over this
        tracer's database, exporting into ``self.obs`` (cached so the
        tracing-stage metrics register once)."""
        if self._span_assembler is None:
            self._span_assembler = self.collector.span_feed()
        return self._span_assembler

    def span_forest(
        self,
        chain: Optional[Sequence[str]] = None,
        trace_ids: Optional[Sequence[int]] = None,
        complete_only: bool = True,
        include_control: bool = True,
    ):
        """Reconstruct per-packet span trees (docs/TIMELINES.md).

        With a ``chain``, only traces observed at every tracepoint
        contribute (set ``complete_only=False`` to keep partial ones).
        ``include_control`` adds the dispatcher->agent->collector
        control-plane track."""
        from repro.tracing.reconstruct import build_control_root

        control = None
        if include_control:
            control = build_control_root(
                self.dispatcher.deploy_log,
                [entry for agent in self.agents.values() for entry in agent.ship_log],
            )
        return self.span_assembler().forest(
            trace_ids=trace_ids,
            chain=chain,
            complete_only=complete_only,
            control_root=control,
        )

    def span_tree(self, trace_id: int, chain: Optional[Sequence[str]] = None):
        """One packet's reconstructed span tree (or ``None``)."""
        return self.span_assembler().tree(trace_id, chain=chain)

    def rpc_forest(self, links, chain: Optional[Sequence[str]] = None):
        """Cross-service span forest from the traced rows plus the
        parent/child causality ``links`` a
        :class:`~repro.services.runtime.ServiceDeployment` recorded
        (docs/SERVICES.md)."""
        return self.span_assembler().rpc_forest(links, chain=chain)

    # -- metrics convenience --------------------------------------------------------------

    def latencies(self, from_label: str, to_label: str) -> List[int]:
        return latency_between(self.db, from_label, to_label)

    def decompose(self, chain: Sequence[str]) -> List[SegmentLatency]:
        return decompose_latency(self.db, chain)

    def throughput(self, label: str, **kwargs) -> ThroughputResult:
        return throughput_at(self.db, label, **kwargs)

    def loss(self, from_label: str, to_label: str):
        return packet_loss(self.db, from_label, to_label)

    def cpu_distribution(self, label: str) -> Dict[int, float]:
        return per_cpu_distribution(self.db, label)

    def rate(self, label: str) -> float:
        return event_rate(self.db, label)

    def counter(self, node_name: str, label: str) -> int:
        """An in-kernel per-CPU counter's aggregated value."""
        agent = self.agents.get(node_name)
        return agent.counter(label) if agent else 0

    def size_histogram(self, node_name: str, label: str) -> List[int]:
        """The in-kernel log2 packet-size histogram at a tracepoint."""
        agent = self.agents.get(node_name)
        return agent.histogram(label) if agent else []

    def total_probe_overhead_ns(self) -> int:
        """Total simulated time spent inside all deployed eBPF programs."""
        total = 0
        for agent in self.agents.values():
            for script in agent.scripts.values():
                total += script.attachment.program.total_cost_ns
        return total

    # -- self-observability ------------------------------------------------------

    def _iter_programs(self):
        """Every eBPF program this pipeline loaded: the agents' tracing
        scripts (including torn-down ones) and the clock-sync probes."""
        for agent in self.agents.values():
            for program in agent.loaded_programs:
                yield program
        for program in self._sync_programs:
            yield program

    def attach_stats_sampler(self, interval_ns: int = 50_000_000) -> StatsSampler:
        """Start periodic registry snapshots on the engine (idempotent).

        Also wires the sampler-derived collector ingest-rate gauge."""
        if self.sampler is not None:
            return self.sampler
        self.sampler = StatsSampler(self.engine, self.obs, interval_ns=interval_ns)
        rate_gauge = self.obs.register_spec(obs_contract.COLLECTOR_INGEST_RATE)
        self.sampler.add_rate_gauge(
            rate_gauge, obs_contract.COLLECTOR_RECORDS.name)
        self.sampler.start()
        return self.sampler

    def attach_streaming(
        self,
        chain: Sequence[str],
        window_ns: int = 100_000_000,
        slide_ns: Optional[int] = None,
        allowed_lateness_ns: int = 0,
        top_k: int = 8,
        emit_interval_ns: Optional[int] = None,
    ):
        """Attach the live window-aggregation layer (idempotent): an
        aggregator subscribed to this tracer's collector ingest, with
        its ``vnt_stream_*`` metrics in ``self.obs``.  Call its
        ``close_all()`` after final collection to flush the last
        windows (docs/STREAMING.md)."""
        if self.streaming is not None:
            return self.streaming
        from repro.streaming import StreamingAggregator, StreamingConfig

        config = StreamingConfig(
            chain=tuple(chain),
            window_ns=window_ns,
            slide_ns=slide_ns,
            allowed_lateness_ns=allowed_lateness_ns,
            top_k=top_k,
            emit_interval_ns=emit_interval_ns,
        )
        aggregator = StreamingAggregator(config, registry=self.obs)
        aggregator.attach(self.collector)
        if emit_interval_ns is not None:
            aggregator.start_emitter(self.engine, emit_interval_ns)
        self.streaming = aggregator
        return aggregator

    def pipeline_health(self) -> str:
        """The pipeline-health report (see analysis.reports)."""
        from repro.analysis.reports import pipeline_health_report

        return pipeline_health_report(self.obs, sampler=self.sampler)

    def __repr__(self) -> str:
        return f"<VNetTracer agents={sorted(self.agents)} rows={self.db.rows_inserted}>"
