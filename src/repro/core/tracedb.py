"""The trace database (the paper uses InfluxDB; §III-C: "all the
tracing records at different tracepoints are dumped into the trace
database, where records are indexed by their packet IDs").

An in-memory *columnar* time-series store: one table per tracepoint
label, each table a set of parallel ``array`` columns (one machine word
per field instead of one Python object per record).  The collector's
hot path, :meth:`TraceDB.insert_packed`, decodes a whole packed
shipment blob straight into the columns -- no ``TraceRecord`` or
:class:`TraceRow` objects exist on the ingest path.

Query-side indexes are lazy and insert-invalidated:

* per table, a position list sorted by aligned timestamp
  (:meth:`ts_minmax` and the metric kernels reuse it until the next
  insert into that table invalidates it);
* per trace ID, the timestamp-sorted materialized rows
  (:meth:`rows_for_trace`), cached so span reconstruction never re-sorts
  an unchanged trace;
* per table, the first row position per trace ID, maintained
  incrementally at append time (:meth:`trace_ids_at` /
  :meth:`first_ts_at`), and per trace, the set of labels it was seen at
  (:meth:`complete_traces`).

Every mutation that can change what a consumer would read back --
row inserts (single or packed), shipment dedup bookkeeping, clock-skew
registration -- bumps :attr:`TraceDB.generation`, the monotonic counter
the span layer keys its forest memo cache on (docs/TIMELINES.md):
equal generations guarantee identical assembly output, so a cached
forest may be served; any mutation forces a rebuild.

:class:`TraceRow` views are materialized only at the API boundary, so
existing callers (metrics, span reconstruction, reports) keep their
row-level contract -- including iteration orders, which reproduce the
legacy row-store byte-for-byte (see tests/test_tracedb_columnar.py).
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.core.records import RECORD_STRUCT, TraceRecord
from repro.obs import contract as obs_contract
from repro.obs.registry import MetricsRegistry


class TraceRow(NamedTuple):
    """One stored record, enriched with collection metadata."""

    trace_id: int
    tracepoint_id: int
    timestamp_ns: int  # aligned to the master clock when skew is known
    raw_timestamp_ns: int
    packet_len: int
    cpu: int
    node: str
    label: str


class TraceColumns(NamedTuple):
    """Read-only view of one table's columns (for vectorized kernels).

    The arrays are the live storage: treat them as immutable snapshots
    between inserts, never mutate them.
    """

    trace_id: array
    timestamp_ns: array
    packet_len: array
    cpu: array


class _ColumnTable:
    """One tracepoint table: parallel signed-64 columns + its indexes."""

    __slots__ = (
        "label",
        "trace_id",
        "tracepoint_id",
        "timestamp_ns",
        "raw_timestamp_ns",
        "packet_len",
        "cpu",
        "node_idx",
        "first_by_trace",
        "ts_order",
    )

    def __init__(self, label: str):
        self.label = label
        self.trace_id = array("q")
        self.tracepoint_id = array("q")
        self.timestamp_ns = array("q")  # aligned; skew can push it negative
        self.raw_timestamp_ns = array("q")
        self.packet_len = array("q")
        self.cpu = array("q")
        self.node_idx = array("q")  # index into TraceDB._nodes
        # trace_id -> position of its first (truthy-ID) row, in
        # first-occurrence order -- the legacy trace_ids_at dict order.
        self.first_by_trace: Dict[int, int] = {}
        # Positions stable-sorted by aligned timestamp; None = stale.
        self.ts_order: Optional[List[int]] = None

    def __len__(self) -> int:
        return len(self.timestamp_ns)

    def append(
        self,
        trace_id: int,
        tracepoint_id: int,
        aligned_ns: int,
        raw_ns: int,
        packet_len: int,
        cpu: int,
        node_idx: int,
    ) -> int:
        pos = len(self.timestamp_ns)
        self.trace_id.append(trace_id)
        self.tracepoint_id.append(tracepoint_id)
        self.timestamp_ns.append(aligned_ns)
        self.raw_timestamp_ns.append(raw_ns)
        self.packet_len.append(packet_len)
        self.cpu.append(cpu)
        self.node_idx.append(node_idx)
        self.ts_order = None  # insert invalidates the sorted index
        if trace_id and trace_id not in self.first_by_trace:
            self.first_by_trace[trace_id] = pos
        return pos

    def bytes_stored(self) -> int:
        return sum(
            len(column) * column.itemsize
            for column in (
                self.trace_id,
                self.tracepoint_id,
                self.timestamp_ns,
                self.raw_timestamp_ns,
                self.packet_len,
                self.cpu,
                self.node_idx,
            )
        )


class TraceDB:
    """Columnar tables keyed by tracepoint label + a trace-ID index."""

    def __init__(
        self,
        table_prefix: str = "vnettracer",
        registry: Optional[MetricsRegistry] = None,
    ):
        self.table_prefix = table_prefix
        self._tables: Dict[str, _ColumnTable] = {}
        self._nodes: List[str] = []
        self._node_ids: Dict[str, int] = {}
        # trace_id -> [(table, position), ...] in global insertion order
        # (truthy IDs only), plus the lazily materialized sorted rows and
        # the set of labels each trace was observed at.
        self._trace_refs: Dict[int, List[Tuple[_ColumnTable, int]]] = {}
        self._trace_rows: Dict[int, List[TraceRow]] = {}
        self._trace_labels: Dict[int, set] = {}
        self._skew_ns: Dict[str, int] = {}  # node -> (master - node) offset
        self.rows_inserted = 0
        # Monotonic mutation counter: bumped by every insert (single or
        # packed), every shipment-dedup decision, and every clock-skew
        # registration.  Consumers (SpanAssembler's forest memo cache)
        # treat "same generation" as "assembly output cannot have
        # changed".
        self.generation = 0
        # (node, shipment seq) pairs already ingested -- the dedup index
        # behind at-least-once shipment (docs/FAULTS.md).
        self._seen_batches: set = set()
        self.deduped_batches = 0
        # Observability counters (docs/OBSERVABILITY.md, tracedb stage).
        self.bulk_batches = 0
        self.index_rebuilds = 0
        if registry is not None:
            registry.register_spec(obs_contract.TRACEDB_BYTES).add_callback(
                self._bytes_stored_sample
            )
            registry.register_spec(obs_contract.TRACEDB_INDEX_REBUILDS).add_callback(
                self._index_rebuilds_sample
            )
            registry.register_spec(obs_contract.TRACEDB_BULK_BATCHES).add_callback(
                self._bulk_batches_sample
            )

    # -- clock alignment -----------------------------------------------------

    def set_clock_skew(self, node: str, skew_ns: int) -> None:
        """Record the estimated offset to ADD to ``node`` timestamps to
        express them on the master clock.  Counts as a mutation: device
        spans stamp the current skew at assembly time, so cached forests
        must not survive a skew change."""
        self._skew_ns[node] = int(skew_ns)
        self.generation += 1

    def clock_skew(self, node: str) -> int:
        return self._skew_ns.get(node, 0)

    def clock_offsets(self) -> Dict[str, int]:
        """Every registered per-node alignment offset (a copy) -- the
        corrections the span layer stamps onto device spans."""
        return dict(self._skew_ns)

    # -- ingest ------------------------------------------------------------------

    def _table(self, label: str) -> _ColumnTable:
        table = self._tables.get(label)
        if table is None:
            table = self._tables[label] = _ColumnTable(label)
        return table

    def _node_index(self, node: str) -> int:
        idx = self._node_ids.get(node)
        if idx is None:
            idx = self._node_ids[node] = len(self._nodes)
            self._nodes.append(node)
        return idx

    def _note_trace(self, trace_id: int, label: str, table: _ColumnTable, pos: int) -> None:
        self._trace_refs.setdefault(trace_id, []).append((table, pos))
        self._trace_rows.pop(trace_id, None)  # insert invalidates the cache
        self._trace_labels.setdefault(trace_id, set()).add(label)

    def insert(self, node: str, label: str, record: TraceRecord) -> TraceRow:
        aligned = record.timestamp_ns + self._skew_ns.get(node, 0)
        table = self._table(label)
        pos = table.append(
            record.trace_id,
            record.tracepoint_id,
            aligned,
            record.timestamp_ns,
            record.packet_len,
            record.cpu,
            self._node_index(node),
        )
        if record.trace_id:
            self._note_trace(record.trace_id, label, table, pos)
        self.rows_inserted += 1
        self.generation += 1
        return TraceRow(
            trace_id=record.trace_id,
            tracepoint_id=record.tracepoint_id,
            timestamp_ns=aligned,
            raw_timestamp_ns=record.timestamp_ns,
            packet_len=record.packet_len,
            cpu=record.cpu,
            node=node,
            label=label,
        )

    def insert_packed(
        self, node: str, blob: bytes, labels: Dict[int, str]
    ) -> Tuple[int, int]:
        """Bulk-ingest one packed shipment blob (N x 24-byte records).

        Decodes straight into the columns -- the per-record Python
        objects of the legacy path never exist.  ``labels`` maps
        tracepoint IDs to table labels; records with an unregistered ID
        land in a ``tracepoint-<id>`` table and are counted.  Returns
        ``(records_ingested, unknown_tracepoint_records)``."""
        skew = self._skew_ns.get(node, 0)
        node_idx = self._node_index(node)
        tables: Dict[int, _ColumnTable] = {}
        unknown_ids: set = set()
        count = 0
        unknown = 0
        for trace_id, tracepoint_id, ts, packet_len, cpu in RECORD_STRUCT.iter_unpack(blob):
            table = tables.get(tracepoint_id)
            if table is None:
                label = labels.get(tracepoint_id)
                if label is None:
                    unknown_ids.add(tracepoint_id)
                    label = f"tracepoint-{tracepoint_id}"
                table = tables[tracepoint_id] = self._table(label)
            if tracepoint_id in unknown_ids:
                unknown += 1
            pos = table.append(
                trace_id, tracepoint_id, ts + skew, ts, packet_len, cpu, node_idx
            )
            if trace_id:
                self._note_trace(trace_id, table.label, table, pos)
            count += 1
        self.rows_inserted += count
        self.bulk_batches += 1
        self.generation += 1
        return count, unknown

    def mark_batch(self, node: str, seq: int) -> bool:
        """Record a (node, sequence-number) shipment; returns ``False``
        if that batch was already ingested (a retry duplicate the
        collector must discard).  This is the database side of the
        at-least-once delivery contract: agents may send a batch more
        than once, the DB guarantees it lands at most once."""
        key = (node, seq)
        self.generation += 1  # dedup bookkeeping is a mutation too
        if key in self._seen_batches:
            self.deduped_batches += 1
            return False
        self._seen_batches.add(key)
        return True

    # -- row materialization ------------------------------------------------------

    def _row(self, table: _ColumnTable, pos: int) -> TraceRow:
        return TraceRow(
            trace_id=table.trace_id[pos],
            tracepoint_id=table.tracepoint_id[pos],
            timestamp_ns=table.timestamp_ns[pos],
            raw_timestamp_ns=table.raw_timestamp_ns[pos],
            packet_len=table.packet_len[pos],
            cpu=table.cpu[pos],
            node=self._nodes[table.node_idx[pos]],
            label=table.label,
        )

    def _materialize(self, table: _ColumnTable) -> List[TraceRow]:
        nodes = self._nodes
        label = table.label
        return [
            TraceRow(tid, tp, ts, raw, plen, cpu, nodes[node], label)
            for tid, tp, ts, raw, plen, cpu, node in zip(
                table.trace_id,
                table.tracepoint_id,
                table.timestamp_ns,
                table.raw_timestamp_ns,
                table.packet_len,
                table.cpu,
                table.node_idx,
            )
        ]

    # -- queries ------------------------------------------------------------------

    def tables(self) -> List[str]:
        return list(self._tables)

    def table(self, label: str) -> List[TraceRow]:
        table = self._tables.get(label)
        return [] if table is None else self._materialize(table)

    def columns(self, label: str) -> Optional[TraceColumns]:
        """The columns the vectorized metric kernels iterate; ``None``
        for an unknown label."""
        table = self._tables.get(label)
        if table is None:
            return None
        return TraceColumns(
            table.trace_id, table.timestamp_ns, table.packet_len, table.cpu
        )

    def ts_index(self, label: str) -> List[int]:
        """Row positions of ``label``'s table, stable-sorted by aligned
        timestamp.  Built lazily, cached until the next insert into the
        table, counted in ``index_rebuilds``."""
        table = self._tables.get(label)
        if table is None:
            return []
        if table.ts_order is None:
            column = table.timestamp_ns
            table.ts_order = sorted(range(len(column)), key=column.__getitem__)
            self.index_rebuilds += 1
        return table.ts_order

    def ts_minmax(self, label: str) -> Optional[Tuple[int, int]]:
        """(min, max) aligned timestamp at one tracepoint, via the
        sorted index; ``None`` for an empty or unknown table."""
        order = self.ts_index(label)
        if not order:
            return None
        column = self._tables[label].timestamp_ns
        return column[order[0]], column[order[-1]]

    def rows_for_trace(self, trace_id: int) -> List[TraceRow]:
        cached = self._trace_rows.get(trace_id)
        if cached is None:
            refs = self._trace_refs.get(trace_id)
            if not refs:
                return []
            rows = [self._row(table, pos) for table, pos in refs]
            # Stable sort over insertion order: ties keep arrival order,
            # exactly like the legacy per-call sorted(...).
            rows.sort(key=lambda r: r.timestamp_ns)
            self._trace_rows[trace_id] = cached = rows
        return list(cached)

    def trace_group_rows(
        self,
        trace_ids: Optional[Iterable[int]] = None,
        snapshot: bool = True,
    ) -> List[Tuple[int, List[Tuple[int, int, str, str, int, int]]]]:
        """The span layer's group-by kernel: rows bucketed per trace.

        Returns ``[(trace_id, rows), ...]`` in request order (default:
        every indexed trace in first-seen order), where each ``rows``
        list holds ``(timestamp_ns, seq, node, label, cpu, packet_len)``
        tuples sorted by (aligned timestamp, global insertion order) --
        exactly the order :meth:`rows_for_trace` produces, without
        materializing :class:`TraceRow` objects.  ``seq`` is the row's
        insertion rank within its trace; because it is unique, plain
        tuple sort never compares past it, which makes ``list.sort``
        the stable argsort the assembler needs.

        With ``snapshot`` (the full-forest path) each touched table's
        columns are converted to lists once up front (``array.tolist``
        is a single C pass), so the per-row cost is two list indexes and
        one tuple build; ``snapshot=False`` (single-trace lookups)
        indexes the live arrays directly and never pays the O(table)
        copy.
        """
        if trace_ids is None:
            trace_ids = self._trace_refs.keys()
        nodes = self._nodes
        columns: Dict[str, tuple] = {}
        groups: List[Tuple[int, List[Tuple[int, int, str, str, int, int]]]] = []
        for trace_id in trace_ids:
            refs = self._trace_refs.get(trace_id)
            if not refs:
                groups.append((trace_id, []))
                continue
            rows: List[Tuple[int, int, str, str, int, int]] = []
            append = rows.append
            seq = 0
            for table, pos in refs:
                cols = columns.get(table.label)
                if cols is None:
                    if snapshot:
                        cols = (
                            table.timestamp_ns.tolist(),
                            table.node_idx.tolist(),
                            table.cpu.tolist(),
                            table.packet_len.tolist(),
                        )
                    else:
                        cols = (
                            table.timestamp_ns,
                            table.node_idx,
                            table.cpu,
                            table.packet_len,
                        )
                    columns[table.label] = cols
                append(
                    (
                        cols[0][pos],
                        seq,
                        nodes[cols[1][pos]],
                        table.label,
                        cols[2][pos],
                        cols[3][pos],
                    )
                )
                seq += 1
            rows.sort()
            groups.append((trace_id, rows))
        return groups

    def record_count_for_trace(self, trace_id: int) -> int:
        """How many rows a trace has, without materializing them (the
        span layer's orphan accounting)."""
        refs = self._trace_refs.get(trace_id)
        return 0 if refs is None else len(refs)

    def trace_ids(self) -> List[int]:
        """Every indexed trace ID, in first-seen (insertion) order --
        the deterministic iteration order span reconstruction uses."""
        return list(self._trace_refs)

    def trace_ids_at(self, label: str) -> Dict[int, TraceRow]:
        """First row per trace ID at one tracepoint (dup-safe)."""
        table = self._tables.get(label)
        if table is None:
            return {}
        return {
            trace_id: self._row(table, pos)
            for trace_id, pos in table.first_by_trace.items()
        }

    def first_ts_at(self, label: str) -> Dict[int, int]:
        """Aligned timestamp of the first row per trace ID at one
        tracepoint -- :meth:`trace_ids_at` without materializing rows
        (the latency kernels only need the timestamps)."""
        table = self._tables.get(label)
        if table is None:
            return {}
        column = table.timestamp_ns
        return {
            trace_id: column[pos] for trace_id, pos in table.first_by_trace.items()
        }

    def time_range(
        self, label: str, start_ns: Optional[int] = None, end_ns: Optional[int] = None
    ) -> List[TraceRow]:
        table = self._tables.get(label)
        if table is None:
            return []
        if start_ns is None and end_ns is None:
            return self._materialize(table)
        return [
            self._row(table, pos)
            for pos, ts in enumerate(table.timestamp_ns)
            if (start_ns is None or ts >= start_ns) and (end_ns is None or ts <= end_ns)
        ]

    def count(self, label: str) -> int:
        table = self._tables.get(label)
        return 0 if table is None else len(table)

    # -- data cleaning (§III-C) --------------------------------------------------------

    def incomplete_traces(self, required_labels: Iterable[str]) -> List[int]:
        """Trace IDs that missed at least one of the given tracepoints
        (e.g. dropped packets or ring-buffer overruns)."""
        required = list(required_labels)
        return [
            trace_id
            for trace_id, seen in self._trace_labels.items()
            if any(label not in seen for label in required)
        ]

    def complete_traces(self, required_labels: Iterable[str]) -> List[int]:
        required = list(required_labels)
        return [
            trace_id
            for trace_id, seen in self._trace_labels.items()
            if all(label in seen for label in required)
        ]

    # -- self-observability ------------------------------------------------------

    def bytes_stored(self) -> int:
        """Bytes held in column storage across every table."""
        return sum(table.bytes_stored() for table in self._tables.values())

    def _bytes_stored_sample(self) -> float:
        return float(self.bytes_stored())

    def _index_rebuilds_sample(self) -> float:
        return float(self.index_rebuilds)

    def _bulk_batches_sample(self) -> float:
        return float(self.bulk_batches)

    def __repr__(self) -> str:
        sizes = {label: len(table) for label, table in self._tables.items()}
        return f"<TraceDB {self.table_prefix!r} tables={sizes}>"
