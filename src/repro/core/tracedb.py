"""The trace database (the paper uses InfluxDB; §III-C: "all the
tracing records at different tracepoints are dumped into the trace
database, where records are indexed by their packet IDs").

An in-memory time-series store: one table per tracepoint, a global
index by trace ID, and the query/cleaning operations the metrics layer
needs (timestamp alignment for clock skew, incomplete-record
identification).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional

from repro.core.records import TraceRecord


class TraceRow(NamedTuple):
    """One stored record, enriched with collection metadata."""

    trace_id: int
    tracepoint_id: int
    timestamp_ns: int  # aligned to the master clock when skew is known
    raw_timestamp_ns: int
    packet_len: int
    cpu: int
    node: str
    label: str


class TraceDB:
    """Tables keyed by tracepoint label + a trace-ID index."""

    def __init__(self, table_prefix: str = "vnettracer"):
        self.table_prefix = table_prefix
        self._tables: Dict[str, List[TraceRow]] = {}
        self._by_trace_id: Dict[int, List[TraceRow]] = {}
        self._skew_ns: Dict[str, int] = {}  # node -> (master - node) offset
        self.rows_inserted = 0
        # (node, shipment seq) pairs already ingested -- the dedup index
        # behind at-least-once shipment (docs/FAULTS.md).
        self._seen_batches: set = set()
        self.deduped_batches = 0

    # -- clock alignment -----------------------------------------------------

    def set_clock_skew(self, node: str, skew_ns: int) -> None:
        """Record the estimated offset to ADD to ``node`` timestamps to
        express them on the master clock."""
        self._skew_ns[node] = int(skew_ns)

    def clock_skew(self, node: str) -> int:
        return self._skew_ns.get(node, 0)

    def clock_offsets(self) -> Dict[str, int]:
        """Every registered per-node alignment offset (a copy) -- the
        corrections the span layer stamps onto device spans."""
        return dict(self._skew_ns)

    # -- ingest ------------------------------------------------------------------

    def insert(self, node: str, label: str, record: TraceRecord) -> TraceRow:
        aligned = record.timestamp_ns + self._skew_ns.get(node, 0)
        row = TraceRow(
            trace_id=record.trace_id,
            tracepoint_id=record.tracepoint_id,
            timestamp_ns=aligned,
            raw_timestamp_ns=record.timestamp_ns,
            packet_len=record.packet_len,
            cpu=record.cpu,
            node=node,
            label=label,
        )
        self._tables.setdefault(label, []).append(row)
        if record.trace_id:
            self._by_trace_id.setdefault(record.trace_id, []).append(row)
        self.rows_inserted += 1
        return row

    def mark_batch(self, node: str, seq: int) -> bool:
        """Record a (node, sequence-number) shipment; returns ``False``
        if that batch was already ingested (a retry duplicate the
        collector must discard).  This is the database side of the
        at-least-once delivery contract: agents may send a batch more
        than once, the DB guarantees it lands at most once."""
        key = (node, seq)
        if key in self._seen_batches:
            self.deduped_batches += 1
            return False
        self._seen_batches.add(key)
        return True

    # -- queries ------------------------------------------------------------------

    def tables(self) -> List[str]:
        return list(self._tables)

    def table(self, label: str) -> List[TraceRow]:
        return list(self._tables.get(label, []))

    def rows_for_trace(self, trace_id: int) -> List[TraceRow]:
        return sorted(self._by_trace_id.get(trace_id, []), key=lambda r: r.timestamp_ns)

    def trace_ids(self) -> List[int]:
        """Every indexed trace ID, in first-seen (insertion) order --
        the deterministic iteration order span reconstruction uses."""
        return list(self._by_trace_id)

    def trace_ids_at(self, label: str) -> Dict[int, TraceRow]:
        """First row per trace ID at one tracepoint (dup-safe)."""
        result: Dict[int, TraceRow] = {}
        for row in self._tables.get(label, []):
            if row.trace_id and row.trace_id not in result:
                result[row.trace_id] = row
        return result

    def time_range(
        self, label: str, start_ns: Optional[int] = None, end_ns: Optional[int] = None
    ) -> List[TraceRow]:
        rows = self._tables.get(label, [])
        return [
            row
            for row in rows
            if (start_ns is None or row.timestamp_ns >= start_ns)
            and (end_ns is None or row.timestamp_ns <= end_ns)
        ]

    def count(self, label: str) -> int:
        return len(self._tables.get(label, []))

    # -- data cleaning (§III-C) --------------------------------------------------------

    def incomplete_traces(self, required_labels: Iterable[str]) -> List[int]:
        """Trace IDs that missed at least one of the given tracepoints
        (e.g. dropped packets or ring-buffer overruns)."""
        required = list(required_labels)
        incomplete = []
        for trace_id, rows in self._by_trace_id.items():
            seen = {row.label for row in rows}
            if any(label not in seen for label in required):
                incomplete.append(trace_id)
        return incomplete

    def complete_traces(self, required_labels: Iterable[str]) -> List[int]:
        required = list(required_labels)
        complete = []
        for trace_id, rows in self._by_trace_id.items():
            seen = {row.label for row in rows}
            if all(label in seen for label in required):
                complete.append(trace_id)
        return complete

    def __repr__(self) -> str:
        sizes = {label: len(rows) for label, rows in self._tables.items()}
        return f"<TraceDB {self.table_prefix!r} tables={sizes}>"
