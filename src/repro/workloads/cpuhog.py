"""A CPU-bound spinner.

On Xen guests the ``cpu_hog=True`` VM flag (an always-busy vCPU) is the
usual way to model Case Study II's interfering VM; this class covers
non-gated CPUs (KVM guests, hosts) by keeping a CPU's queue perpetually
fed with fixed-size compute slices.
"""

from __future__ import annotations

from repro.sim.cpu import CPU


class CPUHog:
    """Keeps one CPU 100% busy with back-to-back slices."""

    def __init__(self, cpu: CPU, slice_ns: int = 100_000):
        self.cpu = cpu
        self.slice_ns = slice_ns
        self._running = False
        self.slices_run = 0

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._feed()

    def stop(self) -> None:
        self._running = False

    def _feed(self) -> None:
        if not self._running:
            return
        self.slices_run += 1
        self.cpu.submit(self.slice_ns, self._feed, tag="cpu-hog")
