"""Latency and throughput summaries shared by workloads and benches."""

from __future__ import annotations

import math
from typing import Iterable, List, NamedTuple, Sequence


class LatencySummary(NamedTuple):
    """Summary of a latency sample set (nanoseconds)."""

    count: int
    avg_ns: float
    min_ns: int
    p50_ns: int
    p90_ns: int
    p99_ns: int
    p999_ns: int
    max_ns: int

    def scaled(self, divisor: float = 1e3) -> dict:
        """As microseconds (or any unit) for printing."""
        return {
            "count": self.count,
            "avg": self.avg_ns / divisor,
            "min": self.min_ns / divisor,
            "p50": self.p50_ns / divisor,
            "p90": self.p90_ns / divisor,
            "p99": self.p99_ns / divisor,
            "p99.9": self.p999_ns / divisor,
            "max": self.max_ns / divisor,
        }


def percentile(sorted_values: Sequence[int], fraction: float) -> int:
    """Nearest-rank percentile on a pre-sorted sequence."""
    if not sorted_values:
        raise ValueError("empty sample set")
    rank = max(0, min(len(sorted_values) - 1, math.ceil(fraction * len(sorted_values)) - 1))
    return sorted_values[rank]


def summarize_latencies(samples: Iterable[int]) -> LatencySummary:
    values: List[int] = sorted(samples)
    if not values:
        raise ValueError("no latency samples recorded")
    return LatencySummary(
        count=len(values),
        avg_ns=sum(values) / len(values),
        min_ns=values[0],
        p50_ns=percentile(values, 0.50),
        p90_ns=percentile(values, 0.90),
        p99_ns=percentile(values, 0.99),
        p999_ns=percentile(values, 0.999),
        max_ns=values[-1],
    )


def jitter_series(latencies: Sequence[int]) -> List[int]:
    """Per-packet jitter as defined in §III-D: delta of consecutive
    latencies."""
    return [latencies[i + 1] - latencies[i] for i in range(len(latencies) - 1)]


def jitter_range(latencies: Sequence[int]) -> tuple:
    """(min, max) jitter, the form the paper quotes for Fig. 11."""
    series = jitter_series(latencies)
    if not series:
        return (0, 0)
    return (min(series), max(series))


def throughput_bps(total_bytes: int, duration_ns: int) -> float:
    """Bits per second over a window."""
    if duration_ns <= 0:
        return 0.0
    return total_bytes * 8 * 1e9 / duration_ns
