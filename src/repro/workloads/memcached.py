"""CloudSuite Data Caching stand-in: memcached server + fixed-rate client.

Matches the paper's Case Study II configuration: the server "simulated
the behavior of a Twitter caching server"; the client runs 4 worker
threads with 20 connections, a GET:SET ratio of 4:1, and a fixed
request rate of 5000 rps, measuring per-request latency.

The protocol is a simplified memcached text protocol over our TCP:
fixed-size requests, value-sized responses, per-request service cost on
the server's vCPU.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.addressing import IPv4Address
from repro.net.stack import KernelNode
from repro.net.tcp import TCPConnection
from repro.sim.rng import SeededRNG
from repro.workloads.stats import LatencySummary, summarize_latencies

DEFAULT_PORT = 11211
REQUEST_BYTES = 64        # "get <twitter key>\r\n" padded
GET_RESPONSE_BYTES = 2400  # Twitter dataset multi-get reply
SET_RESPONSE_BYTES = 8    # "STORED\r\n"
GET_SERVICE_NS = 28_000
SET_SERVICE_NS = 32_000
GET_SET_RATIO = 4


def request_is_set(request_index: int) -> bool:
    """The deterministic GET/SET schedule both sides derive: every
    (ratio+1)-th request on a connection is a SET -> a 4:1 mix."""
    return request_index % (GET_SET_RATIO + 1) == GET_SET_RATIO


class MemcachedServer:
    """Accepts connections; answers fixed-size GET/SET requests."""

    def __init__(
        self,
        node: KernelNode,
        ip: IPv4Address,
        port: int = DEFAULT_PORT,
        cpu_index: Optional[int] = None,
    ):
        self.node = node
        self.cpu_index = cpu_index if cpu_index is not None else (
            1 if len(node.cpus) > 1 else 0
        )
        self.listener = node.tcp.listen(
            ip, port, on_connection=self._on_connection, cpu_index=self.cpu_index
        )
        self._rx_bytes: Dict[tuple, int] = {}
        self._req_counts: Dict[tuple, int] = {}
        self.gets = 0
        self.sets = 0

    def _on_connection(self, conn: TCPConnection) -> None:
        conn.on_data = self._on_data
        self._rx_bytes[conn.key] = 0
        self._req_counts[conn.key] = 0

    def _on_data(self, conn: TCPConnection, nbytes: int, packet) -> None:
        pending = self._rx_bytes.get(conn.key, 0) + nbytes
        while pending >= REQUEST_BYTES:
            pending -= REQUEST_BYTES
            self._serve_request(conn)
        self._rx_bytes[conn.key] = pending

    def _serve_request(self, conn: TCPConnection) -> None:
        # Our TCP substrate carries byte counts, not payload contents, so
        # the GET/SET schedule is derived deterministically from the
        # per-connection request index (client and server agree on it):
        # every (ratio+1)-th request is a SET, giving the 4:1 mix.
        count = self._req_counts.get(conn.key, 0)
        self._req_counts[conn.key] = count + 1
        is_set = request_is_set(count)
        if is_set:
            self.sets += 1
            service_ns, response = SET_SERVICE_NS, SET_RESPONSE_BYTES
        else:
            self.gets += 1
            service_ns, response = GET_SERVICE_NS, GET_RESPONSE_BYTES
        cpu = self.node.cpus[self.cpu_index]
        self.node.charge(cpu, self.node.noisy(service_ns), lambda: conn.send_app_bytes(response))


class DataCachingClient:
    """Open-loop fixed-rate GET/SET client over many connections."""

    def __init__(
        self,
        node: KernelNode,
        ip: IPv4Address,
        server_ip: IPv4Address,
        server_port: int = DEFAULT_PORT,
        workers: int = 4,
        connections_per_worker: int = 5,  # 4 workers x 20 total connections
        rps: int = 5000,
        get_set_ratio: int = 4,
        rng: Optional[SeededRNG] = None,
        cpu_index: Optional[int] = None,
    ):
        self.node = node
        self.rps = rps
        self.get_set_ratio = get_set_ratio
        self.rng = rng or node.rng.fork("datacaching")
        self.connections: List[TCPConnection] = []
        self._conn_busy: Dict[tuple, bool] = {}
        self._conn_expected: Dict[tuple, int] = {}
        self._conn_started: Dict[tuple, int] = {}
        self._conn_rx: Dict[tuple, int] = {}
        self._conn_req_index: Dict[tuple, int] = {}
        self.latencies_ns: List[int] = []
        self.dropped_for_busy = 0
        self.issued = 0
        self._running = False
        self._deadline_ns = 0
        self._rr = 0
        total_conns = workers * connections_per_worker
        for i in range(total_conns):
            conn = node.tcp.connect(
                ip, server_ip, server_port, cpu_index=cpu_index, app="datacaching"
            )
            conn.on_data = self._on_response
            self.connections.append(conn)
            self._conn_busy[conn.key] = False
            self._conn_rx[conn.key] = 0
            self._conn_req_index[conn.key] = 0

    def start(self, duration_ns: int, start_delay_ns: int = 0) -> None:
        engine = self.node.engine
        self._running = True
        self._deadline_ns = engine.now + start_delay_ns + duration_ns
        engine.schedule(start_delay_ns, self._tick)

    def _tick(self) -> None:
        engine = self.node.engine
        if not self._running or engine.now >= self._deadline_ns:
            self._running = False
            return
        self._issue()
        engine.schedule(int(1e9 / self.rps), self._tick)

    def _pick_connection(self) -> Optional[TCPConnection]:
        for _ in range(len(self.connections)):
            conn = self.connections[self._rr % len(self.connections)]
            self._rr += 1
            if conn.state == TCPConnection.ESTABLISHED and not self._conn_busy[conn.key]:
                return conn
        return None

    def _issue(self) -> None:
        conn = self._pick_connection()
        if conn is None:
            self.dropped_for_busy += 1
            return
        request_index = self._conn_req_index[conn.key]
        self._conn_req_index[conn.key] = request_index + 1
        is_set = request_is_set(request_index)
        expected = SET_RESPONSE_BYTES if is_set else GET_RESPONSE_BYTES
        self._conn_busy[conn.key] = True
        self._conn_expected[conn.key] = expected
        self._conn_started[conn.key] = self.node.engine.now
        self._conn_rx[conn.key] = 0
        self.issued += 1
        conn.send_app_bytes(REQUEST_BYTES)

    def _on_response(self, conn: TCPConnection, nbytes: int, _packet) -> None:
        key = conn.key
        if not self._conn_busy.get(key):
            return
        self._conn_rx[key] += nbytes
        if self._conn_rx[key] >= self._conn_expected[key]:
            self.latencies_ns.append(self.node.engine.now - self._conn_started[key])
            self._conn_busy[key] = False

    def summary(self) -> LatencySummary:
        return summarize_latencies(self.latencies_ns)
