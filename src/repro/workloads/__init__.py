"""Benchmark applications from the paper's evaluation.

* :mod:`repro.workloads.sockperf` -- UDP latency (ping-pong and
  under-load modes), the paper's primary latency probe.
* :mod:`repro.workloads.iperf` -- bulk UDP/TCP traffic generators used
  to congest the OVS data path.
* :mod:`repro.workloads.netperf` -- TCP/UDP stream throughput
  measurement (Fig. 7b, Fig. 12b).
* :mod:`repro.workloads.memcached` -- the CloudSuite Data Caching
  stand-in: a memcached-style server plus a fixed-rate GET/SET client
  (Fig. 10b).
* :mod:`repro.workloads.cpuhog` -- a pure CPU spinner for scheduler
  interference experiments.
* :mod:`repro.workloads.stats` -- latency/throughput summaries.
"""

from repro.workloads.iperf import IperfUDPClient, IperfUDPServer, IperfTCPClient
from repro.workloads.memcached import DataCachingClient, MemcachedServer
from repro.workloads.netperf import NetperfClient, NetperfServer
from repro.workloads.sockperf import SockperfClient, SockperfServer
from repro.workloads.stats import LatencySummary, summarize_latencies

__all__ = [
    "SockperfClient",
    "SockperfServer",
    "IperfUDPClient",
    "IperfUDPServer",
    "IperfTCPClient",
    "NetperfClient",
    "NetperfServer",
    "MemcachedServer",
    "DataCachingClient",
    "LatencySummary",
    "summarize_latencies",
]
