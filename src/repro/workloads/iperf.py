"""iPerf: bulk traffic generators [7].

The UDP client paces datagrams at a target packet rate (``-b`` analog);
with a rate beyond what the data path can switch, queues at the OVS
ingress saturate -- the congestion driver of Case Study I.  The TCP
client streams through a :class:`~repro.net.tcp.TCPConnection`, so it
reacts to drops/queueing the way a real iPerf does.
"""

from __future__ import annotations

from typing import Optional

from repro.net.addressing import IPv4Address
from repro.net.stack import KernelNode
from repro.net.tcp import MSS
from repro.workloads.stats import throughput_bps

DEFAULT_PORT = 5201
DEFAULT_UDP_PAYLOAD = 1470  # classic iperf UDP datagram size


class IperfUDPServer:
    """Counts received datagrams/bytes over the run."""

    def __init__(
        self,
        node: KernelNode,
        ip: IPv4Address,
        port: int = DEFAULT_PORT,
        cpu_index: Optional[int] = None,
    ):
        self.node = node
        self.socket = node.bind_udp(ip, port, cpu_index=cpu_index)
        self.socket.on_receive = self._on_datagram
        self.bytes_received = 0
        self.datagrams = 0
        self._first_ns: Optional[int] = None
        self._last_ns = 0

    def _on_datagram(self, payload: bytes, _src, _port, _packet) -> None:
        now = self.node.engine.now
        if self._first_ns is None:
            self._first_ns = now
        self._last_ns = now
        self.datagrams += 1
        self.bytes_received += len(payload)

    def goodput_bps(self) -> float:
        if self._first_ns is None:
            return 0.0
        return throughput_bps(self.bytes_received, self._last_ns - self._first_ns)


class IperfUDPClient:
    """Fixed-rate UDP sender."""

    def __init__(
        self,
        node: KernelNode,
        ip: IPv4Address,
        server_ip: IPv4Address,
        server_port: int = DEFAULT_PORT,
        local_port: int = 30000,
        payload_bytes: int = DEFAULT_UDP_PAYLOAD,
        rate_pps: int = 100_000,
        cpu_index: Optional[int] = None,
    ):
        self.node = node
        self.server_ip = server_ip
        self.server_port = server_port
        self.payload_bytes = payload_bytes
        self.rate_pps = rate_pps
        self.socket = node.bind_udp(ip, local_port, cpu_index=cpu_index)
        self.sent = 0
        self._running = False
        self._deadline_ns = 0

    def start(self, duration_ns: int, start_delay_ns: int = 0) -> None:
        engine = self.node.engine
        self._running = True
        self._deadline_ns = engine.now + start_delay_ns + duration_ns
        engine.schedule(start_delay_ns, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        engine = self.node.engine
        if not self._running or engine.now >= self._deadline_ns:
            self._running = False
            return
        self.sent += 1
        self.socket.sendto(
            self.server_ip,
            self.server_port,
            bytes(self.payload_bytes),
            app="iperf-udp",
            app_seq=self.sent,
        )
        engine.schedule(int(1e9 / self.rate_pps), self._tick)


class IperfTCPClient:
    """Streaming TCP sender: keeps the send buffer topped up."""

    def __init__(
        self,
        node: KernelNode,
        ip: IPv4Address,
        server_ip: IPv4Address,
        server_port: int = DEFAULT_PORT,
        gso_bytes: int = MSS,
        chunk_bytes: int = 256 * 1024,
        cpu_index: Optional[int] = None,
    ):
        self.node = node
        self.chunk_bytes = chunk_bytes
        self.conn = node.tcp.connect(
            ip,
            server_ip,
            server_port,
            cpu_index=cpu_index,
            gso_bytes=gso_bytes,
            app="iperf-tcp",
        )
        self._running = False
        self._deadline_ns = 0

    def start(self, duration_ns: int, start_delay_ns: int = 0) -> None:
        engine = self.node.engine
        self._running = True
        self._deadline_ns = engine.now + start_delay_ns + duration_ns
        engine.schedule(start_delay_ns, self._refill)

    def stop(self) -> None:
        self._running = False

    def _refill(self) -> None:
        engine = self.node.engine
        if not self._running or engine.now >= self._deadline_ns:
            self._running = False
            return
        # Keep several chunks of unsent application data queued.
        if self.conn._app_pending < self.chunk_bytes:
            self.conn.send_app_bytes(4 * self.chunk_bytes)
        engine.schedule(250_000, self._refill)
