"""Netperf: stream throughput measurement (Fig. 7b, Fig. 12b).

``NetperfServer`` accepts TCP connections (or a UDP socket) and counts
delivered bytes inside a measurement window; ``NetperfClient`` drives a
TCP_STREAM or UDP_STREAM test.  TCP receive delivery passes through
``kretprobe:tcp_recvmsg`` -- the exact function the paper attaches both
SystemTap and vNetTracer to in the overhead comparison.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.addressing import IPv4Address
from repro.net.stack import KernelNode
from repro.net.tcp import MSS, TCPConnection
from repro.workloads.stats import throughput_bps

DEFAULT_PORT = 12865


class NetperfServer:
    """TCP (and optional UDP) sink with windowed byte accounting."""

    def __init__(
        self,
        node: KernelNode,
        ip: IPv4Address,
        port: int = DEFAULT_PORT,
        cpu_index: Optional[int] = None,
        udp: bool = False,
        gso_bytes: int = MSS,
    ):
        self.node = node
        self.ip = ip
        self.port = port
        self.bytes_received = 0
        self._window_start_ns: Optional[int] = None
        self._window_end_ns = 0
        self.connections: List[TCPConnection] = []
        if udp:
            self.socket = node.bind_udp(ip, port, cpu_index=cpu_index)
            self.socket.on_receive = self._on_udp
        else:
            self.listener = node.tcp.listen(
                ip, port, on_connection=self._on_connection,
                cpu_index=cpu_index, gso_bytes=gso_bytes,
            )

    def _on_connection(self, conn: TCPConnection) -> None:
        self.connections.append(conn)
        conn.on_data = self._on_tcp_data

    def _on_tcp_data(self, _conn: TCPConnection, nbytes: int, _packet) -> None:
        self._account(nbytes)

    def _on_udp(self, payload: bytes, _src, _port, _packet) -> None:
        self._account(len(payload))

    def _account(self, nbytes: int) -> None:
        now = self.node.engine.now
        if self._window_start_ns is None:
            self._window_start_ns = now
        self._window_end_ns = now
        self.bytes_received += nbytes

    def reset_window(self) -> None:
        """Discard warm-up bytes; measurement restarts at the next byte."""
        self.bytes_received = 0
        self._window_start_ns = None
        self._window_end_ns = 0

    def goodput_bps(self) -> float:
        if self._window_start_ns is None:
            return 0.0
        return throughput_bps(self.bytes_received, self._window_end_ns - self._window_start_ns)


class NetperfClient:
    """TCP_STREAM / UDP_STREAM driver."""

    def __init__(
        self,
        node: KernelNode,
        ip: IPv4Address,
        server_ip: IPv4Address,
        server_port: int = DEFAULT_PORT,
        mode: str = "TCP_STREAM",
        gso_bytes: int = MSS,
        udp_payload_bytes: int = 1470,
        udp_rate_pps: int = 100_000,
        cpu_index: Optional[int] = None,
    ):
        if mode not in ("TCP_STREAM", "UDP_STREAM"):
            raise ValueError(f"unknown netperf mode {mode!r}")
        self.node = node
        self.mode = mode
        self.server_ip = server_ip
        self.server_port = server_port
        self._running = False
        self._deadline_ns = 0
        if mode == "TCP_STREAM":
            self.conn: Optional[TCPConnection] = node.tcp.connect(
                ip, server_ip, server_port,
                cpu_index=cpu_index, gso_bytes=gso_bytes, app="netperf",
            )
            self.socket = None
        else:
            self.conn = None
            self.socket = node.bind_udp(ip, 31000, cpu_index=cpu_index)
        self.udp_payload_bytes = udp_payload_bytes
        self.udp_rate_pps = udp_rate_pps
        self.chunk_bytes = 256 * 1024

    def start(self, duration_ns: int, start_delay_ns: int = 0) -> None:
        engine = self.node.engine
        self._running = True
        self._deadline_ns = engine.now + start_delay_ns + duration_ns
        engine.schedule(start_delay_ns, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        engine = self.node.engine
        if not self._running or engine.now >= self._deadline_ns:
            self._running = False
            return
        if self.conn is not None:
            # Keep several chunks queued so the app never starves the
            # congestion window (netperf's send loop is back-to-back).
            if self.conn._app_pending < self.chunk_bytes:
                self.conn.send_app_bytes(4 * self.chunk_bytes)
            engine.schedule(250_000, self._tick)
        else:
            self.socket.sendto(
                self.server_ip, self.server_port,
                bytes(self.udp_payload_bytes), app="netperf-udp",
            )
            engine.schedule(int(1e9 / self.udp_rate_pps), self._tick)
