"""Sockperf: the paper's UDP latency probe [12].

The server echoes datagrams; the client either ping-pongs (send the
next request when the reply lands) or runs *under load* (fixed messages
per second regardless of replies -- what the paper uses to observe tail
latency under interference).  Like the real tool, reported "latency" is
half the measured round trip; the default message payload is 56 bytes
(§IV-C: "the default Sockperf packet size was just 56 bytes").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.addressing import IPv4Address
from repro.net.stack import KernelNode, UDPSocket
from repro.workloads.stats import LatencySummary, jitter_range, summarize_latencies

DEFAULT_PORT = 11111
DEFAULT_MSG_BYTES = 56


class SockperfServer:
    """Echo server."""

    def __init__(
        self,
        node: KernelNode,
        ip: IPv4Address,
        port: int = DEFAULT_PORT,
        cpu_index: Optional[int] = None,
    ):
        self.node = node
        self.socket: UDPSocket = node.bind_udp(ip, port, cpu_index=cpu_index)
        self.socket.on_receive = self._echo
        self.requests = 0

    def _echo(self, payload: bytes, src_ip: IPv4Address, src_port: int, _packet) -> None:
        self.requests += 1
        self.socket.sendto(src_ip, src_port, payload, app="sockperf-pong")


class SockperfClient:
    """Latency measurement client."""

    def __init__(
        self,
        node: KernelNode,
        ip: IPv4Address,
        server_ip: IPv4Address,
        server_port: int = DEFAULT_PORT,
        local_port: int = 22222,
        msg_bytes: int = DEFAULT_MSG_BYTES,
        mps: int = 1000,
        mode: str = "under-load",
        cpu_index: Optional[int] = None,
    ):
        if mode not in ("under-load", "ping-pong"):
            raise ValueError(f"unknown sockperf mode {mode!r}")
        self.node = node
        self.server_ip = server_ip
        self.server_port = server_port
        self.msg_bytes = max(8, msg_bytes)
        self.mps = mps
        self.mode = mode
        self.socket = node.bind_udp(ip, local_port, cpu_index=cpu_index)
        self.socket.on_receive = self._on_reply
        self._send_times: Dict[int, int] = {}
        self._seq = 0
        self.rtts_ns: List[int] = []
        self.reply_seqs: List[int] = []
        self.sent = 0
        self.received = 0
        self._running = False
        self._deadline_ns = 0

    # -- driving ------------------------------------------------------------

    def start(self, duration_ns: int, start_delay_ns: int = 0) -> None:
        engine = self.node.engine
        self._running = True
        self._deadline_ns = engine.now + start_delay_ns + duration_ns
        engine.schedule(start_delay_ns, self._tick)

    def _tick(self) -> None:
        engine = self.node.engine
        if not self._running or engine.now >= self._deadline_ns:
            self._running = False
            return
        self._send_one()
        if self.mode == "under-load":
            engine.schedule(int(1e9 / self.mps), self._tick)
        # ping-pong mode sends the next request from _on_reply

    def _send_one(self) -> None:
        seq = self._seq
        self._seq += 1
        self._send_times[seq] = self.node.engine.now
        payload = seq.to_bytes(4, "big") + bytes(self.msg_bytes - 4)
        self.sent += 1
        self.socket.sendto(
            self.server_ip, self.server_port, payload, app="sockperf", app_seq=seq
        )

    def _on_reply(self, payload: bytes, _src_ip, _src_port, _packet) -> None:
        now = self.node.engine.now
        seq = int.from_bytes(payload[:4], "big")
        sent_at = self._send_times.pop(seq, None)
        if sent_at is None:
            return
        self.received += 1
        self.rtts_ns.append(now - sent_at)
        self.reply_seqs.append(seq)
        if self.mode == "ping-pong" and self._running:
            if now < self._deadline_ns:
                self._send_one()
            else:
                self._running = False

    # -- results ---------------------------------------------------------------

    @property
    def latencies_ns(self) -> List[int]:
        """One-way latency: half the RTT, as sockperf reports."""
        return [rtt // 2 for rtt in self.rtts_ns]

    def summary(self) -> LatencySummary:
        return summarize_latencies(self.latencies_ns)

    def jitter_range_ns(self) -> tuple:
        return jitter_range(self.latencies_ns)

    @property
    def loss_count(self) -> int:
        return self.sent - self.received
